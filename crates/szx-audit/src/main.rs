//! CLI wrapper: `szx-audit [--root DIR] [--json FILE] [--quiet]`.
//!
//! Prints `path:line: [rule] message` diagnostics and a summary, optionally
//! writes the deterministic JSON report, and exits 1 when any finding
//! remains — so CI can gate on a plain exit code.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a file path"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: szx-audit [--root DIR] [--json FILE] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match szx_audit::run_audit(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("szx-audit: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("szx-audit: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("szx-audit: {msg}\nusage: szx-audit [--root DIR] [--json FILE] [--quiet]");
    ExitCode::from(2)
}
