//! True-positive suite: the audit must actually fire on the seeded
//! violations under `tests/fixtures/ws/` — one per rule — with stable
//! fingerprints. The committed-workspace tests only prove the zero-finding
//! path; this proves each rule detects what it claims to detect, and pins
//! the fingerprint scheme so a change to it is a deliberate, visible diff
//! (every committed baseline would need regenerating).

#![forbid(unsafe_code)]

use std::path::Path;

use szx_audit::report::{baseline_fingerprints, Report, RULE_IDS};

fn fixture_report() -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    szx_audit::run_audit(&root).expect("fixture tree must be readable")
}

/// (rule, path, line, fingerprint) for every seeded violation. The
/// fingerprint hashes rule + symbol + normalized snippet — line numbers
/// are deliberately excluded, so editing a fixture's *comments* must not
/// change these values, while editing the violating code must.
const EXPECTED: &[(&str, &str, usize, &str)] = &[
    (
        "unsafe-allowlist",
        "crates/szx-core/src/huffman.rs",
        6,
        "e3a84ee5821dfef7",
    ),
    (
        "unsafe-safety",
        "crates/szx-telemetry/src/json.rs",
        5,
        "1020b68d91b34469",
    ),
    (
        "forbid-unsafe",
        "crates/szx-data/src/lib.rs",
        1,
        "537ef5aa220a6c93",
    ),
    (
        "deny-unsafe-op",
        "crates/szx-telemetry/src/lib.rs",
        1,
        "3e1a13976b85ebe4",
    ),
    (
        "deny-unsafe-code",
        "crates/szx-core/src/lib.rs",
        1,
        "3daeb274b623eb70",
    ),
    (
        "target-feature-guard",
        "crates/szx-core/src/simd/mod.rs",
        9,
        "732057a287fb89d2",
    ),
    (
        "panic-reach",
        "crates/szx-core/src/dekernels.rs",
        9,
        "2093d57f290a370f",
    ),
    (
        "hot-loop-alloc",
        "crates/szx-core/src/kernels.rs",
        7,
        "930d9743a069494b",
    ),
    (
        "checked-arith",
        "crates/szx-core/src/cursor.rs",
        5,
        "4308a758082d20ec",
    ),
    (
        "atomics-protocol",
        "crates/szx-telemetry/src/trace.rs",
        8,
        "19a34e45eca9306e",
    ),
    (
        "cast-note",
        "crates/szx-core/src/simd/neon.rs",
        5,
        "1bce68b73c082f28",
    ),
];

#[test]
fn every_rule_fires_exactly_once_with_the_expected_fingerprint() {
    let report = fixture_report();
    assert_eq!(
        report.findings.len(),
        RULE_IDS.len(),
        "one seeded violation per rule:\n{}",
        report.render_text()
    );
    assert_eq!(EXPECTED.len(), RULE_IDS.len(), "table covers every rule");
    for &(rule, path, line, fp) in EXPECTED {
        let hits: Vec<_> = report.findings.iter().filter(|f| f.rule == rule).collect();
        assert_eq!(
            hits.len(),
            1,
            "rule {rule} must fire exactly once: {hits:?}"
        );
        let f = hits[0];
        assert_eq!(f.path, path, "{rule}");
        assert_eq!(f.line, line, "{rule}");
        assert_eq!(
            f.fingerprint, fp,
            "{rule} fingerprint drifted — if the \
             scheme changed deliberately, regenerate every committed baseline"
        );
    }
}

#[test]
fn panic_reach_reports_the_full_call_chain() {
    let report = fixture_report();
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "panic-reach")
        .expect("seeded panic-reach finding");
    assert_eq!(f.symbol, "szx_core::dekernels::deep_index");
    assert_eq!(f.chain.len(), 3, "entry → middle → helper: {:?}", f.chain);
    assert!(f.chain[0].contains("szx_core::decode::decompress"));
    assert!(f.chain[0].contains("crates/szx-core/src/decode.rs:5"));
    assert!(f.chain[1].contains("szx_core::dekernels::middle"));
    assert!(f.chain[2].contains("szx_core::dekernels::deep_index"));
    assert!(
        f.message.contains("szx_core::decode::decompress"),
        "message names the entry point: {}",
        f.message
    );
}

#[test]
fn report_is_deterministic_and_fingerprints_are_well_formed() {
    let a = fixture_report();
    let b = fixture_report();
    assert_eq!(a.to_json(), b.to_json(), "two runs must render identically");
    for f in &a.findings {
        assert_eq!(f.fingerprint.len(), 16, "{f:?}");
        assert!(
            f.fingerprint.chars().all(|c| c.is_ascii_hexdigit()),
            "{f:?}"
        );
    }
    let mut fps: Vec<&str> = a.findings.iter().map(|f| f.fingerprint.as_str()).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), a.findings.len(), "fingerprints must be distinct");
}

#[test]
fn baseline_diff_reports_only_new_findings() {
    let report = fixture_report();
    let json = report.to_json();

    // A baseline containing every current fingerprint: nothing is new.
    let full = baseline_fingerprints(&json);
    assert_eq!(full.len(), report.findings.len());
    assert!(report.new_findings(&full).is_empty());

    // Drop one fingerprint from the baseline: exactly that finding is new.
    let dropped = &report.findings[0];
    let partial: Vec<String> = full
        .iter()
        .filter(|fp| **fp != dropped.fingerprint)
        .cloned()
        .collect();
    let new = report.new_findings(&partial);
    assert_eq!(new.len(), 1, "{new:?}");
    assert_eq!(new[0].fingerprint, dropped.fingerprint);

    // An empty baseline (first adoption): everything is new.
    assert_eq!(report.new_findings(&[]).len(), report.findings.len());
}

#[test]
fn sarif_rendering_carries_rules_results_and_fingerprints() {
    let report = fixture_report();
    let sarif = szx_audit::sarif::to_sarif(&report);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    for rule in RULE_IDS {
        assert!(sarif.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
    }
    for f in &report.findings {
        assert!(
            sarif.contains(&format!(
                "\"szxAuditFingerprint/v1\": \"{}\"",
                f.fingerprint
            )),
            "{}",
            f.fingerprint
        );
    }
    // The panic-reach result embeds its call chain in the message.
    assert!(sarif.contains("szx_core::dekernels::middle"));
}
