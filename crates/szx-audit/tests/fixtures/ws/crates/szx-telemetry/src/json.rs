//! Seeded violation: an allowlisted unsafe site with no `// SAFETY:`
//! justification — the `unsafe-safety` rule must flag it.

pub fn scratch(p: *mut u8) {
    unsafe { p.write(0) }
}
