//! Seeded violation: this crate holds unsafe code and must carry
//! `#![deny(unsafe_op_in_unsafe_fn)]` — the `deny-unsafe-op` rule must
//! report the missing attribute.

mod json;
mod trace;
