//! Seeded violation: a relaxed store to the publish field `len` with no
//! release fence in the module — the `atomics-protocol` rule must flag
//! the unpublished store.

impl TraceBuf {
    fn push(&self, _ev: u64) {
        let seen = self.len.load(Ordering::Acquire);
        self.len.store(seen + 1, Ordering::Relaxed);
        self.len.store(seen + 2, Ordering::Release);
    }
}
