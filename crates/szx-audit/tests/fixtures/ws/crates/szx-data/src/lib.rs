//! Seeded violation: a safe crate root missing `#![forbid(unsafe_code)]`
//! — the `forbid-unsafe` rule must report the missing attribute.
