//! Clean fixture crate root.

#![forbid(unsafe_code)]
