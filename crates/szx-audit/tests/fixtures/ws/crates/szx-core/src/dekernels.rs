//! Helpers on the decode path: `deep_index` panics on short input and
//! carries no `// PANIC-OK:` proof.

pub fn middle(bytes: &[u8]) -> u8 {
    deep_index(bytes)
}

pub fn deep_index(bytes: &[u8]) -> u8 {
    bytes[7]
}
