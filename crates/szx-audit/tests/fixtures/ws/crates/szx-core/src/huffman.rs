//! Seeded violation: `unsafe` outside the allowlisted unsafe surfaces —
//! the `unsafe-allowlist` rule must flag it even with a SAFETY note.

// SAFETY: the pointer is valid — but this file has no unsafe allowance.
pub fn init_tables(p: *mut u8) {
    unsafe { p.write(0) }
}
