//! Clean backend definition used by the target-feature-guard fixture.

#[target_feature(enable = "avx2")]
pub(super) fn scan8(_d: &[f32]) -> f32 {
    0.0
}
