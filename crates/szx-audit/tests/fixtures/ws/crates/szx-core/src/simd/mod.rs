//! Seeded violation: a dispatch-layer call to a `#[target_feature]`
//! backend whose SAFETY note never names the runtime detection guard —
//! the `target-feature-guard` rule must flag it.

mod x86;

pub fn dispatch(d: &[f32]) -> f32 {
    // SAFETY: trust me.
    unsafe { x86::scan8(d) }
}
