//! Seeded violation: unchecked add on length/offset locals on the cursor
//! path — the `checked-arith` rule must flag `pos + len`.

pub fn advance(pos: usize, len: usize) -> usize {
    pos + len
}
