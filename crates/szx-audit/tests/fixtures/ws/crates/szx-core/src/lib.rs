//! Seeded violation: this crate root must carry `#![deny(unsafe_code)]`
//! (per-file opt-ins re-allow it) — the `deny-unsafe-code` rule must
//! report the missing attribute.

#![deny(unsafe_op_in_unsafe_fn)]

mod cursor;
mod decode;
mod dekernels;
mod huffman;
mod kernels;
mod simd;
