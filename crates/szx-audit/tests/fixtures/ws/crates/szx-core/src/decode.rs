//! Seeded violation: `decompress` is a decode entry point whose call
//! chain reaches unchecked indexing in `dekernels.rs` — the `panic-reach`
//! rule must report the full chain.

pub fn decompress(bytes: &[u8]) -> u8 {
    middle(bytes)
}
