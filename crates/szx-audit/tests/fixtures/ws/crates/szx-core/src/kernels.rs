//! Seeded violation: a kernel entry point allocating inside its block
//! loop — the `hot-loop-alloc` rule must flag the `.to_vec()`.

pub fn encode_blocks(data: &[f32]) -> usize {
    let mut total = 0;
    for block in data.chunks(128) {
        let tmp = block.to_vec();
        total += tmp.len();
    }
    total
}
