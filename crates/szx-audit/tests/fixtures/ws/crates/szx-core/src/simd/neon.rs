//! Seeded violation: a narrowing `as` cast in kernel arithmetic without
//! a `// CAST:` note — the `cast-note` rule must flag it.

pub fn lane_count(x: u64) -> u32 {
    x as u32
}
