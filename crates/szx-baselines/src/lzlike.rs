//! Zstd-like lossless byte compressor: LZ77 with hash-chain match finding
//! followed by a canonical-Huffman entropy stage over the token stream.
//!
//! Stands in for the paper's "zstd" row in Table 3: on floating-point
//! scientific data, byte-oriented lossless compression only reaches CR
//! ≈ 1.1–1.5 — the motivation for error-bounded lossy compression.

use szx_core::bitio::{BitReader, BitWriter};

use crate::error::{BaselineError, Result};
use crate::huffman::HuffmanCode;

const MAGIC: [u8; 4] = *b"LZL1";
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255 + MIN_MATCH;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 16;
const CHAIN_DEPTH: usize = 16;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Tokenize `input` into an intermediate byte stream:
/// `[lit_len u8][literals...][match_len u8][offset u16]`-style records where
/// `lit_len`/`match_len` 255 escapes extend with continuation bytes;
/// `match_len == 0` terminates (no match, end of input).
fn lz_tokenize(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut chain = vec![u32::MAX; input.len()];
    let mut i = 0usize;
    let mut lit_start = 0usize;

    let emit_len = |out: &mut Vec<u8>, mut len: usize| {
        while len >= 255 {
            out.push(255);
            len -= 255;
        }
        out.push(len as u8);
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        // Walk the chain for the best (longest) match in the window.
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        let mut cand = head[h];
        let mut depth = 0;
        while cand != u32::MAX && depth < CHAIN_DEPTH {
            let c = cand as usize;
            if i - c > WINDOW {
                break;
            }
            let limit = (input.len() - i).min(MAX_MATCH);
            let mut l = 0usize;
            while l < limit && input[c + l] == input[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_off = i - c;
            }
            cand = chain[c];
            depth += 1;
        }
        if best_len >= MIN_MATCH {
            // Flush pending literals, then the match.
            emit_len(&mut out, i - lit_start);
            out.extend_from_slice(&input[lit_start..i]);
            emit_len(&mut out, best_len - MIN_MATCH + 1); // 0 reserved for EOF
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            // Insert hash entries for the matched region (sparsely, every
            // other position, to bound the cost).
            let end = i + best_len;
            while i < end && i + MIN_MATCH <= input.len() {
                let h = hash4(&input[i..]);
                chain[i] = head[h];
                head[h] = i as u32;
                i += 2;
            }
            i = end;
            lit_start = i;
        } else {
            chain[i] = head[h];
            head[h] = i as u32;
            i += 1;
        }
    }
    // Trailing literals + EOF marker (match_len record 0).
    emit_len(&mut out, input.len() - lit_start);
    out.extend_from_slice(&input[lit_start..]);
    out.push(0);
    out
}

/// Expand the token stream produced by [`lz_tokenize`].
fn lz_expand(tokens: &[u8], size_hint: usize) -> Result<Vec<u8>> {
    // A token byte expands to at most ~260 output bytes; clamp the hint so
    // a forged header cannot demand an absurd allocation up front.
    let mut out = Vec::with_capacity(size_hint.min(tokens.len().saturating_mul(260) + 16));
    let mut p = 0usize;
    let read_len = |p: &mut usize| -> Result<usize> {
        let mut len = 0usize;
        loop {
            let b = *tokens
                .get(*p)
                .ok_or_else(|| BaselineError::Corrupt("token stream truncated".into()))?;
            *p += 1;
            len += b as usize;
            if b != 255 {
                return Ok(len);
            }
        }
    };
    loop {
        let lit_len = read_len(&mut p)?;
        if p + lit_len > tokens.len() {
            return Err(BaselineError::Corrupt("literal run truncated".into()));
        }
        out.extend_from_slice(&tokens[p..p + lit_len]);
        p += lit_len;
        let mlen = read_len(&mut p)?;
        if mlen == 0 {
            return Ok(out); // EOF marker
        }
        let mlen = mlen - 1 + MIN_MATCH;
        if p + 2 > tokens.len() {
            return Err(BaselineError::Corrupt("offset truncated".into()));
        }
        let off = u16::from_le_bytes([tokens[p], tokens[p + 1]]) as usize;
        p += 2;
        if off == 0 || off > out.len() {
            return Err(BaselineError::Corrupt(format!("bad match offset {off}")));
        }
        // Byte-by-byte copy supports overlapping matches (RLE-style).
        let start = out.len() - off;
        for k in 0..mlen {
            let b = out[start + k];
            out.push(b);
        }
    }
}

/// Compress arbitrary bytes losslessly.
pub fn compress(input: &[u8]) -> Result<Vec<u8>> {
    if input.is_empty() {
        return Err(BaselineError::Invalid("empty input".into()));
    }
    let tokens = lz_tokenize(input);
    // Entropy stage over the token bytes.
    let mut freqs = vec![0u64; 256];
    for &b in &tokens {
        freqs[b as usize] += 1;
    }
    let code = HuffmanCode::from_frequencies(&freqs);
    let mut bits = BitWriter::with_capacity(tokens.len());
    for &b in &tokens {
        code.encode(b as usize, &mut bits);
    }
    let mut out = Vec::with_capacity(tokens.len() / 2 + 300);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());
    out.extend_from_slice(&(tokens.len() as u64).to_le_bytes());
    code.serialize(&mut out);
    out.extend_from_slice(bits.as_bytes());
    Ok(out)
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>> {
    if bytes.len() < 20 || bytes[0..4] != MAGIC {
        return Err(BaselineError::Corrupt("bad header".into()));
    }
    let n = u64::from_le_bytes(bytes[4..12].try_into().unwrap()) as usize;
    let n_tokens = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    if n_tokens > bytes.len().saturating_mul(64) {
        return Err(BaselineError::Corrupt("implausible token count".into()));
    }
    let (code, used) = HuffmanCode::deserialize(&bytes[20..])
        .ok_or_else(|| BaselineError::Corrupt("bad Huffman table".into()))?;
    let decoder = code.decoder();
    let mut r = BitReader::new(&bytes[20 + used..]);
    let mut tokens = Vec::with_capacity(n_tokens);
    for _ in 0..n_tokens {
        let b = decoder
            .decode(&mut r)
            .ok_or_else(|| BaselineError::Corrupt("entropy stream truncated".into()))?;
        tokens.push(b as u8);
    }
    let out = lz_expand(&tokens, n)?;
    if out.len() != n {
        return Err(BaselineError::Corrupt(format!(
            "expanded to {} bytes, header claims {n}",
            out.len()
        )));
    }
    Ok(out)
}

/// Convenience: compress an f32 slice (little-endian bytes).
pub fn compress_f32(data: &[f32]) -> Result<Vec<u8>> {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for &v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    compress(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data).unwrap();
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_text() {
        roundtrip(b"the quick brown fox jumps over the lazy dog, the quick brown fox again");
    }

    #[test]
    fn roundtrip_repetitive() {
        let data: Vec<u8> = (0..10_000).map(|i| ((i / 100) % 7) as u8).collect();
        let c = compress(&data).unwrap();
        assert!(
            c.len() < data.len() / 5,
            "repetitive data must crush: {}",
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_incompressible() {
        let data: Vec<u8> = (0..5000u32)
            .map(|i| (i.wrapping_mul(0x9e3779b1) >> 13) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_overlapping_matches() {
        // Classic RLE case: offset 1, long match.
        let mut data = vec![7u8; 1000];
        data.extend_from_slice(b"tail");
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_single_byte_and_small() {
        roundtrip(&[42]);
        roundtrip(&[1, 2, 3]);
        roundtrip(&[0; 4]);
    }

    #[test]
    fn float_data_gets_modest_ratio() {
        // Smooth f32 data: lossless CR should land in the paper's 1.1–2
        // band, far below the lossy codecs.
        let data: Vec<f32> = (0..100_000).map(|i| (i as f32 * 0.001).sin()).collect();
        let c = compress_f32(&data).unwrap();
        let cr = (data.len() * 4) as f64 / c.len() as f64;
        assert!(cr > 1.02 && cr < 4.0, "cr {cr}");
    }

    #[test]
    fn long_literal_runs_escape_correctly() {
        // >255 literals with no matches exercises the length escapes.
        let data: Vec<u8> = (0..1000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_error() {
        let c = compress(b"hello hello hello hello").unwrap();
        assert!(decompress(&c[..10]).is_err());
        let mut bad = c.clone();
        bad[0] = b'X';
        assert!(decompress(&bad).is_err());
        assert!(compress(&[]).is_err());
    }
}
