//! # szx-baselines
//!
//! From-scratch implementations of the codecs the SZx paper (HPDC '22)
//! compares against, reproducing each algorithm's *skeleton* — and hence
//! its operation profile and compression behaviour:
//!
//! * [`szlike`] — SZ-style error-bounded compressor: multidimensional
//!   Lorenzo prediction, linear-scale quantization (one FP division per
//!   point), canonical Huffman coding. Best compression ratios, slowest.
//! * [`zfplike`] — ZFP-style transform codec: 4^d blocks, block floating
//!   point, integer lifting transform, negabinary, embedded group-tested
//!   bitplane coding, fixed-accuracy mode. Middle ground.
//! * [`lzlike`] — zstd-style lossless: LZ77 hash chains + Huffman. The
//!   lossless reference row of Table 3 (CR ≈ 1.1–1.5 on scientific data).
//! * [`chunked`] — OpenMP-style slab parallelization of the above for the
//!   multicore experiments (Tables 6–7).
//! * [`huffman`] — the shared canonical Huffman substrate.

#![forbid(unsafe_code)]

pub mod chunked;
pub mod error;
pub mod huffman;
pub mod lzlike;
pub mod szlike;
pub mod zfplike;

pub use error::BaselineError;
