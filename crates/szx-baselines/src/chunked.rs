//! OpenMP-style multicore wrappers for the baseline codecs (omp-SZ /
//! omp-ZFP in Tables 6–7): the grid is split into contiguous slabs along
//! its slowest non-trivial axis, each slab is compressed independently in
//! parallel, and the container records per-slab stream sizes.

use rayon::prelude::*;

use crate::error::{BaselineError, Result};
use crate::{szlike, zfplike};

const MAGIC: [u8; 4] = *b"CHK1";

/// Which serial codec the chunks use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    SzLike,
    ZfpLike,
}

impl Codec {
    fn code(self) -> u8 {
        match self {
            Codec::SzLike => 0,
            Codec::ZfpLike => 1,
        }
    }

    fn from_code(c: u8) -> Result<Codec> {
        match c {
            0 => Ok(Codec::SzLike),
            1 => Ok(Codec::ZfpLike),
            _ => Err(BaselineError::Corrupt(format!("unknown codec {c}"))),
        }
    }

    fn compress(self, data: &[f32], dims: [usize; 3], eb: f64) -> Result<Vec<u8>> {
        match self {
            Codec::SzLike => szlike::compress(data, dims, eb),
            Codec::ZfpLike => zfplike::compress(data, dims, eb),
        }
    }

    fn decompress(self, bytes: &[u8]) -> Result<(Vec<f32>, [usize; 3])> {
        match self {
            Codec::SzLike => szlike::decompress(bytes),
            Codec::ZfpLike => zfplike::decompress(bytes),
        }
    }
}

/// Split `dims` into up to `n_chunks` slabs along the slowest non-trivial
/// axis. Returns (axis, slab extents).
fn split(dims: [usize; 3], n_chunks: usize) -> (usize, Vec<usize>) {
    let axis = if dims[2] > 1 {
        2
    } else if dims[1] > 1 {
        1
    } else {
        0
    };
    let len = dims[axis];
    let k = n_chunks.max(1).min(len);
    let base = len / k;
    let rem = len % k;
    let extents = (0..k).map(|i| base + usize::from(i < rem)).collect();
    (axis, extents)
}

/// Parallel compression with `n_chunks` independent slabs (use the rayon
/// thread count for the paper's omp experiments).
pub fn compress_par(
    data: &[f32],
    dims: [usize; 3],
    eb: f64,
    codec: Codec,
    n_chunks: usize,
) -> Result<Vec<u8>> {
    let n = dims[0] * dims[1] * dims[2];
    if n == 0 || data.len() != n {
        return Err(BaselineError::Invalid(format!(
            "dims {dims:?} do not match {} elements",
            data.len()
        )));
    }
    let (axis, extents) = split(dims, n_chunks);
    let plane: usize = dims[..axis].iter().product::<usize>().max(1);
    let row = plane * dims[axis - usize::from(axis > 0)].max(1); // unused; kept simple below

    let _ = row;
    // Elements per unit along the split axis.
    let unit: usize = match axis {
        0 => 1,
        1 => dims[0],
        _ => dims[0] * dims[1],
    };
    let mut slabs = Vec::with_capacity(extents.len());
    let mut off = 0usize;
    for &e in &extents {
        let elems = e * unit;
        let mut sub = dims;
        sub[axis] = e;
        slabs.push((off, elems, sub));
        off += elems;
    }

    let streams: Vec<Result<Vec<u8>>> = slabs
        .par_iter()
        .map(|&(off, elems, sub)| codec.compress(&data[off..off + elems], sub, eb))
        .collect();

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(codec.code());
    out.push(axis as u8);
    out.extend_from_slice(&(streams.len() as u32).to_le_bytes());
    for d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    let mut bodies = Vec::with_capacity(streams.len());
    for s in streams {
        bodies.push(s?);
    }
    for b in &bodies {
        out.extend_from_slice(&(b.len() as u64).to_le_bytes());
    }
    for b in &bodies {
        out.extend_from_slice(b);
    }
    Ok(out)
}

/// Parallel decompression of a [`compress_par`] container.
pub fn decompress_par(bytes: &[u8]) -> Result<(Vec<f32>, [usize; 3])> {
    if bytes.len() < 34 || bytes[0..4] != MAGIC {
        return Err(BaselineError::Corrupt("bad container header".into()));
    }
    let codec = Codec::from_code(bytes[4])?;
    let _axis = bytes[5];
    let k = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    let mut dims = [0usize; 3];
    for (i, d) in dims.iter_mut().enumerate() {
        *d = u64::from_le_bytes(bytes[10 + 8 * i..18 + 8 * i].try_into().unwrap()) as usize;
    }
    let mut pos = 34;
    if bytes.len() < pos + 8 * k {
        return Err(BaselineError::Corrupt("size table truncated".into()));
    }
    let mut sizes = Vec::with_capacity(k);
    for _ in 0..k {
        sizes.push(u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize);
        pos += 8;
    }
    let total: usize = sizes.iter().sum();
    if bytes.len() < pos + total {
        return Err(BaselineError::Corrupt("chunk bodies truncated".into()));
    }
    let mut slices = Vec::with_capacity(k);
    for &s in &sizes {
        slices.push(&bytes[pos..pos + s]);
        pos += s;
    }
    let parts: Vec<Result<(Vec<f32>, [usize; 3])>> =
        slices.par_iter().map(|s| codec.decompress(s)).collect();
    let mut out = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
    for p in parts {
        out.extend_from_slice(&p?.0);
    }
    if out.len() != dims[0] * dims[1] * dims[2] {
        return Err(BaselineError::Corrupt("reassembled size mismatch".into()));
    }
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nx: usize, ny: usize, nz: usize) -> (Vec<f32>, [usize; 3]) {
        let mut v = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    v.push((x as f32 * 0.1).sin() + (y as f32 * 0.05).cos() + z as f32 * 0.02);
                }
            }
        }
        (v, [nx, ny, nz])
    }

    #[test]
    fn parallel_roundtrip_both_codecs() {
        let (data, dims) = grid(32, 24, 12);
        for codec in [Codec::SzLike, Codec::ZfpLike] {
            let bytes = compress_par(&data, dims, 1e-3, codec, 8).unwrap();
            let (back, bdims) = decompress_par(&bytes).unwrap();
            assert_eq!(bdims, dims);
            for (&a, &b) in data.iter().zip(&back) {
                assert!((a as f64 - b as f64).abs() <= 1e-3, "{codec:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn chunk_count_variants() {
        let (data, dims) = grid(16, 16, 5);
        for k in [1, 2, 5, 64] {
            let bytes = compress_par(&data, dims, 1e-4, Codec::SzLike, k).unwrap();
            let (back, _) = decompress_par(&bytes).unwrap();
            assert!(data
                .iter()
                .zip(&back)
                .all(|(a, b)| (a - b).abs() as f64 <= 1e-4));
        }
    }

    #[test]
    fn one_d_data_splits_along_x() {
        let (data, dims) = grid(2000, 1, 1);
        let bytes = compress_par(&data, dims, 1e-3, Codec::ZfpLike, 4).unwrap();
        let (back, _) = decompress_par(&bytes).unwrap();
        assert!(data
            .iter()
            .zip(&back)
            .all(|(a, b)| (a - b).abs() as f64 <= 1e-3));
    }

    #[test]
    fn corrupt_container_errors() {
        let (data, dims) = grid(16, 8, 2);
        let bytes = compress_par(&data, dims, 1e-3, Codec::SzLike, 2).unwrap();
        assert!(decompress_par(&bytes[..12]).is_err());
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(decompress_par(&bad).is_err());
    }
}
