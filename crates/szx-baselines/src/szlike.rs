//! SZ-like error-bounded lossy compressor: multidimensional Lorenzo
//! prediction + linear-scale quantization + canonical Huffman coding.
//!
//! This reproduces the algorithmic skeleton (and therefore the operation
//! profile) of the paper's "SZ" comparator: one floating-point *division*
//! per point for the quantization bin (the cost the SZx paper §1 calls out
//! explicitly), prediction from previously-reconstructed neighbors, and an
//! entropy stage whose decoder is branchy and serial — the reason SZ trails
//! SZx by 5–7× in speed while winning on compression ratio.

use szx_core::bitio::{BitReader, BitWriter};

use crate::error::{BaselineError, Result};
use crate::huffman::HuffmanCode;

const MAGIC: [u8; 4] = *b"SZL1";
/// Quantization radius: bins in `(-RADIUS, RADIUS)` are representable;
/// symbol 0 is the escape code for outliers.
const RADIUS: i64 = 32768;

/// Compress a `[nx, ny, nz]` grid (x fastest) under absolute error bound
/// `eb`. `eb == 0` degenerates to storing every point as an outlier
/// (lossless but expansive), exactly like SZ with an unreachable bound.
pub fn compress(data: &[f32], dims: [usize; 3], eb: f64) -> Result<Vec<u8>> {
    let [nx, ny, nz] = dims;
    let n = nx * ny * nz;
    if n == 0 || data.len() != n {
        return Err(BaselineError::Invalid(format!(
            "dims {dims:?} do not match {} elements",
            data.len()
        )));
    }
    if !eb.is_finite() || eb < 0.0 {
        return Err(BaselineError::Invalid(format!("bad error bound {eb}")));
    }
    let twice_eb = 2.0 * eb;

    let mut symbols: Vec<u32> = Vec::with_capacity(n);
    let mut outliers: Vec<u8> = Vec::new();
    let mut n_outliers = 0u64;
    let mut recon = vec![0f32; n];

    let plane = nx * ny;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = z * plane + y * nx + x;
                let pred = lorenzo_pred(&recon, i, x, y, z, nx, plane);
                let d = data[i];
                let diff = d as f64 - pred as f64;
                // The division per point — SZ's signature expensive op.
                let bin = if twice_eb > 0.0 {
                    (diff / twice_eb).round()
                } else {
                    f64::NAN
                };
                let mut escaped = true;
                if bin.is_finite() && bin.abs() < (RADIUS - 1) as f64 {
                    let bin = bin as i64;
                    let rec = (pred as f64 + bin as f64 * twice_eb) as f32;
                    // Guard against f32 rounding swallowing the bound.
                    if (rec as f64 - d as f64).abs() <= eb {
                        symbols.push((bin + RADIUS) as u32);
                        recon[i] = rec;
                        escaped = false;
                    }
                }
                if escaped {
                    symbols.push(0);
                    outliers.extend_from_slice(&d.to_le_bytes());
                    n_outliers += 1;
                    recon[i] = d;
                }
            }
        }
    }

    // Entropy stage.
    let mut freqs = vec![0u64; 2 * RADIUS as usize];
    for &s in &symbols {
        freqs[s as usize] += 1;
    }
    let code = HuffmanCode::from_frequencies(&freqs);
    let mut bits = BitWriter::with_capacity(n / 2);
    for &s in &symbols {
        code.encode(s as usize, &mut bits);
    }

    let mut out = Vec::with_capacity(outliers.len() + n / 2 + 64);
    out.extend_from_slice(&MAGIC);
    for d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(&eb.to_le_bytes());
    out.extend_from_slice(&n_outliers.to_le_bytes());
    out.extend_from_slice(&outliers);
    code.serialize(&mut out);
    let bitbytes = bits.into_bytes();
    out.extend_from_slice(&(bitbytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&bitbytes);
    Ok(out)
}

/// Decompress a stream produced by [`compress`]. Returns the grid and dims.
pub fn decompress(bytes: &[u8]) -> Result<(Vec<f32>, [usize; 3])> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, k: usize| -> Result<&[u8]> {
        if *pos + k > bytes.len() {
            return Err(BaselineError::Corrupt("truncated stream".into()));
        }
        let s = &bytes[*pos..*pos + k];
        *pos += k;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(BaselineError::Corrupt("bad magic".into()));
    }
    let mut dims = [0usize; 3];
    for d in dims.iter_mut() {
        *d = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    }
    let [nx, ny, nz] = dims;
    let n = nx
        .checked_mul(ny)
        .and_then(|v| v.checked_mul(nz))
        .ok_or_else(|| BaselineError::Corrupt("dims overflow".into()))?;
    if n == 0 {
        return Err(BaselineError::Corrupt("zero elements".into()));
    }
    // Every element costs at least one Huffman bit, so a stream of B bytes
    // cannot describe more than ~8B elements; a forged header demanding
    // more must not trigger a giant allocation.
    if n > bytes.len().saturating_mul(8) {
        return Err(BaselineError::Corrupt(format!(
            "{n} elements implausible for a {}-byte stream",
            bytes.len()
        )));
    }
    let eb = f64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    let twice_eb = 2.0 * eb;
    let n_outliers = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    if n_outliers > n {
        return Err(BaselineError::Corrupt("outlier count exceeds n".into()));
    }
    let outlier_bytes = take(&mut pos, n_outliers * 4)?;
    let (code, used) = HuffmanCode::deserialize(&bytes[pos..])
        .ok_or_else(|| BaselineError::Corrupt("bad Huffman table".into()))?;
    pos += used;
    let bitlen = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    let bitbytes = take(&mut pos, bitlen)?;

    let decoder = code.decoder();
    let mut r = BitReader::new(bitbytes);
    let mut recon = vec![0f32; n];
    let mut next_outlier = 0usize;
    let plane = nx * ny;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = z * plane + y * nx + x;
                let sym = decoder
                    .decode(&mut r)
                    .ok_or_else(|| BaselineError::Corrupt("bitstream truncated".into()))?;
                if sym == 0 {
                    if next_outlier >= n_outliers {
                        return Err(BaselineError::Corrupt("outlier pool exhausted".into()));
                    }
                    let o = &outlier_bytes[next_outlier * 4..next_outlier * 4 + 4];
                    recon[i] = f32::from_le_bytes([o[0], o[1], o[2], o[3]]);
                    next_outlier += 1;
                } else {
                    let bin = sym as i64 - RADIUS;
                    let pred = lorenzo_pred(&recon, i, x, y, z, nx, plane);
                    recon[i] = (pred as f64 + bin as f64 * twice_eb) as f32;
                }
            }
        }
    }
    Ok((recon, dims))
}

/// First-order Lorenzo predictor from previously-visited (reconstructed)
/// neighbors; out-of-grid neighbors contribute 0, as in SZ.
#[inline(always)]
fn lorenzo_pred(
    recon: &[f32],
    i: usize,
    x: usize,
    y: usize,
    z: usize,
    nx: usize,
    plane: usize,
) -> f32 {
    let fx = x > 0;
    let fy = y > 0;
    let fz = z > 0;
    let mut pred = 0f32;
    if fx {
        pred += recon[i - 1];
    }
    if fy {
        pred += recon[i - nx];
    }
    if fz {
        pred += recon[i - plane];
    }
    if fx && fy {
        pred -= recon[i - 1 - nx];
    }
    if fx && fz {
        pred -= recon[i - 1 - plane];
    }
    if fy && fz {
        pred -= recon[i - nx - plane];
    }
    if fx && fy && fz {
        pred += recon[i - 1 - nx - plane];
    }
    pred
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3(nx: usize, ny: usize, nz: usize) -> (Vec<f32>, [usize; 3]) {
        let mut v = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    v.push(
                        ((x as f32 * 0.1).sin() + (y as f32 * 0.07).cos())
                            * (1.0 + z as f32 * 0.01),
                    );
                }
            }
        }
        (v, [nx, ny, nz])
    }

    #[test]
    fn roundtrip_respects_bound_3d() {
        let (data, dims) = grid3(40, 30, 20);
        for eb in [1e-2, 1e-4, 1e-6] {
            let bytes = compress(&data, dims, eb).unwrap();
            let (back, bdims) = decompress(&bytes).unwrap();
            assert_eq!(bdims, dims);
            for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
                assert!(
                    (a as f64 - b as f64).abs() <= eb,
                    "eb={eb} i={i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_1d_and_2d() {
        let (data, _) = grid3(500, 1, 1);
        let bytes = compress(&data, [500, 1, 1], 1e-3).unwrap();
        let (back, _) = decompress(&bytes).unwrap();
        assert!(data
            .iter()
            .zip(&back)
            .all(|(a, b)| (a - b).abs() <= 1e-3 + 1e-9));

        let (data, dims) = grid3(64, 48, 1);
        let bytes = compress(&data, dims, 1e-3).unwrap();
        let (back, _) = decompress(&bytes).unwrap();
        assert!(data
            .iter()
            .zip(&back)
            .all(|(a, b)| (a - b).abs() as f64 <= 1e-3));
    }

    #[test]
    fn smooth_data_compresses_much_better_than_szx_would() {
        // On smooth data the Lorenzo bins concentrate near zero and Huffman
        // crushes them — the CR advantage Table 3 shows for SZ.
        let (data, dims) = grid3(64, 64, 16);
        let bytes = compress(&data, dims, 1e-3).unwrap();
        let cr = (data.len() * 4) as f64 / bytes.len() as f64;
        assert!(cr > 10.0, "cr {cr}");
    }

    #[test]
    fn outliers_roundtrip_bit_exact() {
        let mut data = vec![0.5f32; 1000];
        data[100] = 1e30; // forces an escape
        data[101] = f32::NAN;
        data[102] = f32::INFINITY;
        let bytes = compress(&data, [1000, 1, 1], 1e-4).unwrap();
        let (back, _) = decompress(&bytes).unwrap();
        assert_eq!(back[100], 1e30);
        assert!(back[101].is_nan());
        assert_eq!(back[102], f32::INFINITY);
        // Values after the NaN still respect the bound.
        assert!((back[200] - 0.5).abs() <= 1e-4);
    }

    #[test]
    fn zero_bound_is_lossless_via_outliers() {
        let data: Vec<f32> = (0..500).map(|i| (i as f32).sin()).collect();
        let bytes = compress(&data, [500, 1, 1], 0.0).unwrap();
        let (back, _) = decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(compress(&[1.0], [2, 1, 1], 1e-3).is_err());
        assert!(compress(&[1.0], [1, 1, 1], f64::NAN).is_err());
        assert!(compress(&[], [0, 1, 1], 1e-3).is_err());
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let (data, dims) = grid3(16, 16, 4);
        let bytes = compress(&data, dims, 1e-3).unwrap();
        for cut in [0, 3, 10, 40, bytes.len() / 2] {
            assert!(decompress(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decompress(&bad).is_err());
    }
}
