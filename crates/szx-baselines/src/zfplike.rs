//! ZFP-like transform codec: 4^d blocks, block-floating-point alignment,
//! an integer decorrelating lifting transform, negabinary mapping, and
//! embedded group-tested bitplane coding — fixed-accuracy mode.
//!
//! This reproduces the algorithmic skeleton of the paper's "ZFP"
//! comparator: heavier per-point arithmetic than SZx (a full transform per
//! block plus bit-granular entropy coding) in exchange for better
//! compression ratios, and a strictly serial bit-contiguous stream — which
//! is also why the real omp-ZFP ships no multithreaded *de*compressor
//! (Table 7's `n/a` row).
//!
//! Accuracy-mode caveat (shared with the real library): a block whose
//! dynamic range spans more than ~22 binary orders of magnitude cannot be
//! reconstructed below its max-precision granularity `2^(emax−30+2d+2)`
//! even with every bitplane kept, so the effective guarantee is
//! `max(tolerance, granularity)`. Scientific fields far from that regime
//! (all of the paper's datasets) see the plain tolerance.

use szx_core::bitio::{BitReader, BitWriter};

use crate::error::{BaselineError, Result};

const MAGIC: [u8; 4] = *b"ZFL1";
/// Bits per integer coefficient.
const INTPREC: u32 = 32;
/// Negabinary mask for 32-bit ints.
const NBMASK: u32 = 0xaaaa_aaaa;

/// zfp's forward decorrelating lift on four i32s (exactly invertible).
#[inline]
fn fwd_lift(p: &mut [i32], s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[s], p[2 * s], p[3 * s]);
    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    p[0] = x;
    p[s] = y;
    p[2 * s] = z;
    p[3 * s] = w;
}

/// Exact inverse of [`fwd_lift`].
#[inline]
fn inv_lift(p: &mut [i32], s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[s], p[2 * s], p[3 * s]);
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w <<= 1;
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z <<= 1;
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(w);
    p[0] = x;
    p[s] = y;
    p[2 * s] = z;
    p[3 * s] = w;
}

/// Apply the lift along every axis of a 4^d block (x fastest).
fn fwd_transform(block: &mut [i32], d: usize) {
    match d {
        1 => fwd_lift(block, 1),
        2 => {
            for y in 0..4 {
                fwd_lift(&mut block[4 * y..], 1);
            }
            for x in 0..4 {
                fwd_lift(&mut block[x..], 4);
            }
        }
        _ => {
            for z in 0..4 {
                for y in 0..4 {
                    fwd_lift(&mut block[16 * z + 4 * y..], 1);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    fwd_lift(&mut block[16 * z + x..], 4);
                }
            }
            for y in 0..4 {
                for x in 0..4 {
                    fwd_lift(&mut block[4 * y + x..], 16);
                }
            }
        }
    }
}

fn inv_transform(block: &mut [i32], d: usize) {
    match d {
        1 => inv_lift(block, 1),
        2 => {
            for x in 0..4 {
                inv_lift(&mut block[x..], 4);
            }
            for y in 0..4 {
                inv_lift(&mut block[4 * y..], 1);
            }
        }
        _ => {
            for y in 0..4 {
                for x in 0..4 {
                    inv_lift(&mut block[4 * y + x..], 16);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    inv_lift(&mut block[16 * z + x..], 4);
                }
            }
            for z in 0..4 {
                for y in 0..4 {
                    inv_lift(&mut block[16 * z + 4 * y..], 1);
                }
            }
        }
    }
}

/// Sequency-order permutation: coefficients sorted by total frequency
/// (coordinate sum), low frequencies first — concentrates energy at the
/// front so the group-tested bitplanes terminate early.
fn sequency_perm(d: usize) -> Vec<usize> {
    let size = 1usize << (2 * d);
    let mut idx: Vec<usize> = (0..size).collect();
    idx.sort_by_key(|&i| {
        let (x, y, z) = (i & 3, (i >> 2) & 3, (i >> 4) & 3);
        (x + y + z, i)
    });
    idx
}

#[inline]
fn int2uint(i: i32) -> u32 {
    (i as u32).wrapping_add(NBMASK) ^ NBMASK
}

#[inline]
fn uint2int(u: u32) -> i32 {
    (u ^ NBMASK).wrapping_sub(NBMASK) as i32
}

/// zfp's embedded bitplane encoder with unary group testing.
fn encode_ints(coeffs: &[u32], kmin: u32, w: &mut BitWriter) {
    let size = coeffs.len();
    let mut n = 0usize;
    for k in (kmin..INTPREC).rev() {
        // Gather bitplane k, coefficient i at bit i.
        let mut x = 0u64;
        for (i, &c) in coeffs.iter().enumerate() {
            x |= (((c >> k) & 1) as u64) << i;
        }
        // First n coefficients are already significant: verbatim bits.
        w.write_bits_lsb(x, n as u32);
        x = if n >= 64 { 0 } else { x >> n };
        // Unary run-length for the rest.
        let mut m = n;
        while m < size {
            let any = x != 0;
            w.write_bit(any);
            if !any {
                break;
            }
            // Emit zeros until the next set bit, then the terminating one.
            while m < size - 1 && (x & 1) == 0 {
                w.write_bit(false);
                x >>= 1;
                m += 1;
            }
            if m < size - 1 {
                w.write_bit(true);
            }
            x >>= 1;
            m += 1;
        }
        n = n.max(m);
    }
}

/// Mirror of [`encode_ints`].
fn decode_ints(size: usize, kmin: u32, r: &mut BitReader<'_>) -> Option<Vec<u32>> {
    let mut coeffs = vec![0u32; size];
    let mut n = 0usize;
    for k in (kmin..INTPREC).rev() {
        let mut x = r.read_bits_lsb(n as u32)?;
        let mut m = n;
        while m < size {
            if !r.read_bit()? {
                break;
            }
            while m < size - 1 && !r.read_bit()? {
                m += 1;
            }
            x |= 1u64 << m;
            m += 1;
        }
        n = n.max(m);
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c |= (((x >> i) & 1) as u32) << k;
        }
    }
    Some(coeffs)
}

/// Dimensionality of the block decomposition implied by the grid shape.
fn block_dim(dims: [usize; 3]) -> usize {
    if dims[2] > 1 {
        3
    } else if dims[1] > 1 {
        2
    } else {
        1
    }
}

/// Per-block precision in fixed-accuracy mode (zfp's formula): enough
/// bitplanes to push the truncation error below `eb`, plus guard bits for
/// the transform gain.
fn block_precision(emax: i32, min_exp: i32, d: usize) -> u32 {
    let p = emax as i64 - min_exp as i64 + 2 * (d as i64 + 1);
    p.clamp(0, INTPREC as i64) as u32
}

/// frexp-style exponent of the block's max magnitude (`x = m·2^e`,
/// `m ∈ [0.5, 1)`), as zfp uses it: quantizing by `2^(30 − e)` keeps
/// `|q| < 2^30`, leaving two headroom bits for the transform's range
/// expansion.
fn max_exponent(block: &[f32]) -> i32 {
    let mut m = 0f32;
    for &v in block {
        let a = v.abs();
        if a > m {
            m = a;
        }
    }
    ((m.to_bits() >> 23) & 0xff) as i32 - 126
}

/// Compress a `[nx, ny, nz]` grid under absolute error bound `eb`.
pub fn compress(data: &[f32], dims: [usize; 3], eb: f64) -> Result<Vec<u8>> {
    let [nx, ny, nz] = dims;
    let n = nx * ny * nz;
    if n == 0 || data.len() != n {
        return Err(BaselineError::Invalid(format!(
            "dims {dims:?} do not match {} elements",
            data.len()
        )));
    }
    if !eb.is_finite() || eb <= 0.0 {
        return Err(BaselineError::Invalid(format!(
            "zfp-like accuracy mode needs a positive finite bound, got {eb}"
        )));
    }
    let d = block_dim(dims);
    let perm = sequency_perm(d);
    let bs = perm.len();
    let min_exp = eb.log2().floor() as i32;

    let mut w = BitWriter::with_capacity(n * 2);
    let mut block = vec![0f32; bs];
    let mut ints = vec![0i32; bs];

    for_each_block(dims, d, |base, gather| {
        gather_block(data, dims, d, base, &mut block, gather);
        let finite = block.iter().all(|v| v.is_finite());
        let emax = max_exponent(&block);
        if !finite {
            // Escape hatch zfp lacks: store raw bits so NaN/Inf survive.
            w.write_bit(true);
            w.write_bit(true);
            for &v in &block {
                w.write_bits(v.to_bits() as u64, 32);
            }
            return;
        }
        if block.iter().all(|&v| v == 0.0) {
            w.write_bit(false);
            return;
        }
        w.write_bit(true);
        w.write_bit(false);
        w.write_bits((emax + 256) as u64, 9);
        let prec = block_precision(emax, min_exp, d);
        if prec == 0 {
            return;
        }
        // Block floating point: align all values to the common exponent.
        let scale = 2f64.powi(30 - emax);
        for (q, &v) in ints.iter_mut().zip(block.iter()) {
            *q = (v as f64 * scale) as i32;
        }
        fwd_transform(&mut ints, d);
        let mut coeffs = vec![0u32; bs];
        for (slot, &src) in coeffs.iter_mut().zip(perm.iter()) {
            *slot = int2uint(ints[src]);
        }
        encode_ints(&coeffs, INTPREC - prec, &mut w);
    });

    let mut out = Vec::with_capacity(w.as_bytes().len() + 40);
    out.extend_from_slice(&MAGIC);
    for dim in dims {
        out.extend_from_slice(&(dim as u64).to_le_bytes());
    }
    out.extend_from_slice(&eb.to_le_bytes());
    out.extend_from_slice(w.as_bytes());
    Ok(out)
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<(Vec<f32>, [usize; 3])> {
    if bytes.len() < 36 || bytes[0..4] != MAGIC {
        return Err(BaselineError::Corrupt("bad header".into()));
    }
    let mut dims = [0usize; 3];
    for (i, dim) in dims.iter_mut().enumerate() {
        *dim = u64::from_le_bytes(bytes[4 + 8 * i..12 + 8 * i].try_into().unwrap()) as usize;
    }
    let n = dims[0]
        .checked_mul(dims[1])
        .and_then(|v| v.checked_mul(dims[2]))
        .ok_or_else(|| BaselineError::Corrupt("dims overflow".into()))?;
    if n == 0 || n > bytes.len().saturating_mul(4096) {
        return Err(BaselineError::Corrupt("implausible element count".into()));
    }
    let eb = f64::from_le_bytes(bytes[28..36].try_into().unwrap());
    if !eb.is_finite() || eb <= 0.0 {
        return Err(BaselineError::Corrupt("bad error bound".into()));
    }
    let d = block_dim(dims);
    let perm = sequency_perm(d);
    let bs = perm.len();
    let min_exp = eb.log2().floor() as i32;

    let mut r = BitReader::new(&bytes[36..]);
    let mut out = vec![0f32; n];
    let mut block = vec![0f32; bs];
    let mut err: Option<BaselineError> = None;

    for_each_block(dims, d, |base, _| {
        if err.is_some() {
            return;
        }
        let mut decode = || -> Option<()> {
            if !r.read_bit()? {
                block.fill(0.0);
                return Some(());
            }
            if r.read_bit()? {
                for v in block.iter_mut() {
                    *v = f32::from_bits(r.read_bits(32)? as u32);
                }
                return Some(());
            }
            let emax = r.read_bits(9)? as i32 - 256;
            let prec = block_precision(emax, min_exp, d);
            if prec == 0 {
                block.fill(0.0);
                return Some(());
            }
            let coeffs = decode_ints(bs, INTPREC - prec, &mut r)?;
            let mut ints = vec![0i32; bs];
            for (&slot, &dst) in coeffs.iter().zip(perm.iter()) {
                ints[dst] = uint2int(slot);
            }
            inv_transform(&mut ints, d);
            let scale = 2f64.powi(emax - 30);
            for (v, &q) in block.iter_mut().zip(ints.iter()) {
                *v = (q as f64 * scale) as f32;
            }
            Some(())
        };
        if decode().is_none() {
            err = Some(BaselineError::Corrupt("bitstream truncated".into()));
            return;
        }
        scatter_block(&mut out, dims, d, base, &block);
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok((out, dims))
}

/// Iterate block origins in x-fastest order.
fn for_each_block(dims: [usize; 3], d: usize, mut f: impl FnMut([usize; 3], bool)) {
    let bx = dims[0].div_ceil(4);
    let by = if d >= 2 { dims[1].div_ceil(4) } else { 1 };
    let bz = if d >= 3 { dims[2].div_ceil(4) } else { 1 };
    // For 1-/2-D decompositions, the unused trailing axes are iterated
    // plane-by-plane so every sample is covered.
    let extra_y = if d >= 2 { 1 } else { dims[1] };
    let extra_z = if d >= 3 { 1 } else { dims[2] };
    for ez in 0..extra_z {
        for ey in 0..extra_y {
            for z in 0..bz {
                for y in 0..by {
                    for x in 0..bx {
                        let base = [
                            x * 4,
                            if d >= 2 { y * 4 } else { ey },
                            if d >= 3 { z * 4 } else { ez },
                        ];
                        f(base, true);
                    }
                }
            }
        }
    }
}

fn gather_block(
    data: &[f32],
    dims: [usize; 3],
    d: usize,
    base: [usize; 3],
    block: &mut [f32],
    _pad: bool,
) {
    let [nx, ny, _nz] = dims;
    let plane = nx * ny;
    let ext = |axis_len: usize, v: usize| v.min(axis_len - 1);
    match d {
        1 => {
            for (i, b) in block.iter_mut().enumerate().take(4) {
                let x = ext(nx, base[0] + i);
                *b = data[base[2] * plane + base[1] * nx + x];
            }
        }
        2 => {
            for j in 0..4 {
                let y = ext(ny, base[1] + j);
                for i in 0..4 {
                    let x = ext(nx, base[0] + i);
                    block[4 * j + i] = data[base[2] * plane + y * nx + x];
                }
            }
        }
        _ => {
            let nz = dims[2];
            for k in 0..4 {
                let z = ext(nz, base[2] + k);
                for j in 0..4 {
                    let y = ext(ny, base[1] + j);
                    for i in 0..4 {
                        let x = ext(nx, base[0] + i);
                        block[16 * k + 4 * j + i] = data[z * plane + y * nx + x];
                    }
                }
            }
        }
    }
}

fn scatter_block(out: &mut [f32], dims: [usize; 3], d: usize, base: [usize; 3], block: &[f32]) {
    let [nx, ny, nz] = dims;
    let plane = nx * ny;
    match d {
        1 => {
            for (i, &v) in block.iter().enumerate().take(4) {
                let x = base[0] + i;
                if x < nx {
                    out[base[2] * plane + base[1] * nx + x] = v;
                }
            }
        }
        2 => {
            for j in 0..4 {
                let y = base[1] + j;
                if y >= ny {
                    continue;
                }
                for i in 0..4 {
                    let x = base[0] + i;
                    if x < nx {
                        out[base[2] * plane + y * nx + x] = block[4 * j + i];
                    }
                }
            }
        }
        _ => {
            for k in 0..4 {
                let z = base[2] + k;
                if z >= nz {
                    continue;
                }
                for j in 0..4 {
                    let y = base[1] + j;
                    if y >= ny {
                        continue;
                    }
                    for i in 0..4 {
                        let x = base[0] + i;
                        if x < nx {
                            out[z * plane + y * nx + x] = block[16 * k + 4 * j + i];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_inverse_error_is_tiny() {
        // zfp's lift deliberately drops low bits (the `>> 1` steps), so the
        // inverse reconstructs within a few integer units — an error the
        // fixed-accuracy guard bits (`2·(d+1)` in block_precision) absorb.
        for seed in 0..500u64 {
            let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s as i32 / 4 // headroom like quantized coefficients
            };
            let mut v = [next(), next(), next(), next()];
            let orig = v;
            fwd_lift(&mut v, 1);
            inv_lift(&mut v, 1);
            for (a, b) in v.iter().zip(&orig) {
                assert!(
                    (*a as i64 - *b as i64).abs() <= 4,
                    "seed {seed}: {orig:?} -> {v:?}"
                );
            }
        }
    }

    #[test]
    fn transform_roundtrip_error_bounded_all_dims() {
        for d in 1..=3usize {
            let size = 1usize << (2 * d);
            let mut v: Vec<i32> = (0..size as i32).map(|i| (i * 37 - 500) << 8).collect();
            let orig = v.clone();
            fwd_transform(&mut v, d);
            assert_ne!(v, orig, "transform must do something");
            inv_transform(&mut v, d);
            let tol = 1i64 << (2 * d); // grows with nesting depth
            for (i, (a, b)) in v.iter().zip(&orig).enumerate() {
                assert!(
                    (*a as i64 - *b as i64).abs() <= tol,
                    "d={d} i={i}: {b} -> {a}"
                );
            }
        }
    }

    #[test]
    fn negabinary_roundtrip() {
        for i in [0i32, 1, -1, i32::MAX / 2, i32::MIN / 2, 12345, -98765] {
            assert_eq!(uint2int(int2uint(i)), i);
        }
    }

    #[test]
    fn sequency_starts_at_dc() {
        assert_eq!(sequency_perm(3)[0], 0, "DC coefficient first");
        assert_eq!(sequency_perm(2).len(), 16);
        assert_eq!(sequency_perm(1).len(), 4);
    }

    #[test]
    fn encode_decode_ints_roundtrip() {
        let coeffs: Vec<u32> = (0..64u32)
            .map(|i| i.wrapping_mul(0x0101_0101) >> (i % 7))
            .collect();
        for kmin in [0u32, 8, 24, 31] {
            let mut w = BitWriter::new();
            encode_ints(&coeffs, kmin, &mut w);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let back = decode_ints(64, kmin, &mut r).unwrap();
            for (i, (&a, &b)) in coeffs.iter().zip(&back).enumerate() {
                let mask = if kmin == 0 {
                    u32::MAX
                } else {
                    !((1u32 << kmin) - 1)
                };
                assert_eq!(a & mask, b, "kmin={kmin} i={i}");
            }
        }
    }

    fn grid3(nx: usize, ny: usize, nz: usize) -> (Vec<f32>, [usize; 3]) {
        let mut v = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    v.push((x as f32 * 0.2).sin() * (y as f32 * 0.15).cos() + z as f32 * 0.05);
                }
            }
        }
        (v, [nx, ny, nz])
    }

    #[test]
    fn roundtrip_respects_bound() {
        for (nx, ny, nz) in [(33, 1, 1), (33, 18, 1), (17, 14, 9)] {
            let (data, dims) = grid3(nx, ny, nz);
            for eb in [1e-1, 1e-3, 1e-5] {
                let bytes = compress(&data, dims, eb).unwrap();
                let (back, bdims) = decompress(&bytes).unwrap();
                assert_eq!(bdims, dims);
                for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
                    assert!(
                        (a as f64 - b as f64).abs() <= eb,
                        "dims {dims:?} eb={eb} i={i}: {a} vs {b} err {}",
                        (a as f64 - b as f64).abs()
                    );
                }
            }
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let (data, dims) = grid3(64, 64, 8);
        let bytes = compress(&data, dims, 1e-3).unwrap();
        let cr = (data.len() * 4) as f64 / bytes.len() as f64;
        assert!(cr > 4.0, "cr {cr}");
    }

    #[test]
    fn zero_blocks_are_one_bit() {
        let data = vec![0.0f32; 4096];
        let bytes = compress(&data, [16, 16, 16], 1e-3).unwrap();
        // 64 blocks * 1 bit + header.
        assert!(bytes.len() < 36 + 16, "len {}", bytes.len());
        let (back, _) = decompress(&bytes).unwrap();
        assert!(back.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn nonfinite_blocks_roundtrip_bit_exact() {
        let mut data = vec![1.0f32; 256];
        data[5] = f32::NAN;
        data[6] = f32::INFINITY;
        let bytes = compress(&data, [256, 1, 1], 1e-3).unwrap();
        let (back, _) = decompress(&bytes).unwrap();
        assert!(back[5].is_nan());
        assert_eq!(back[6], f32::INFINITY);
        assert_eq!(back[4].to_bits(), data[4].to_bits());
    }

    #[test]
    fn invalid_and_corrupt_inputs_error() {
        assert!(compress(&[1.0], [2, 1, 1], 1e-3).is_err());
        assert!(
            compress(&[1.0], [1, 1, 1], 0.0).is_err(),
            "accuracy mode needs eb > 0"
        );
        let (data, dims) = grid3(16, 16, 1);
        let bytes = compress(&data, dims, 1e-3).unwrap();
        assert!(decompress(&bytes[..20]).is_err());
        let mut bad = bytes.clone();
        bad[1] = b'!';
        assert!(decompress(&bad).is_err());
    }
}
