//! Canonical Huffman coding over `u32` symbols, built from scratch.
//!
//! Used by the SZ-like codec (quantization bins) and the LZ-like lossless
//! codec (literals/lengths). Encoding uses canonical codes so the table
//! serializes as one code length per symbol; decoding uses a two-level
//! lookup (fast table for short codes, fallback walk for long ones).

use szx_core::bitio::{BitReader, BitWriter};

/// Maximum admissible code length. Lengths are limited by flattening the
/// tree (see `limit_lengths`), which keeps the decoder table small.
const MAX_LEN: u32 = 24;
/// Width of the fast decode table.
const FAST_BITS: u32 = 10;

/// A canonical Huffman code for `n` symbols.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// Code length per symbol (0 = symbol absent).
    pub lengths: Vec<u8>,
    /// Canonical code bits per symbol (MSB-first, `lengths[i]` bits).
    codes: Vec<u32>,
}

impl HuffmanCode {
    /// Build from symbol frequencies. At least one frequency must be
    /// nonzero. A single-symbol alphabet gets a 1-bit code.
    pub fn from_frequencies(freqs: &[u64]) -> HuffmanCode {
        assert!(!freqs.is_empty(), "empty alphabet");
        let n = freqs.len();
        // Heap-based tree construction over (weight, node) pairs.
        // Nodes: 0..n are leaves, then internal.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut parent: Vec<usize> = vec![usize::MAX; n];
        for (i, &f) in freqs.iter().enumerate() {
            if f > 0 {
                heap.push(Reverse((f, i)));
            }
        }
        if heap.is_empty() {
            panic!("all symbol frequencies are zero");
        }
        if heap.len() == 1 {
            let Reverse((_, sym)) = heap.pop().unwrap();
            let mut lengths = vec![0u8; n];
            lengths[sym] = 1;
            let mut code = HuffmanCode {
                lengths,
                codes: vec![0; n],
            };
            code.assign_canonical();
            return code;
        }
        let mut next = n;
        while heap.len() > 1 {
            let Reverse((wa, a)) = heap.pop().unwrap();
            let Reverse((wb, b)) = heap.pop().unwrap();
            parent.resize(next + 1, usize::MAX);
            parent[a] = next;
            parent[b] = next;
            heap.push(Reverse((wa + wb, next)));
            next += 1;
        }
        // Depth of each leaf = code length.
        let mut lengths = vec![0u8; n];
        for (i, length) in lengths.iter_mut().enumerate() {
            if freqs[i] == 0 {
                continue;
            }
            let mut d = 0u32;
            let mut node = i;
            while parent[node] != usize::MAX {
                node = parent[node];
                d += 1;
            }
            *length = d.max(1) as u8;
        }
        limit_lengths(&mut lengths, MAX_LEN as u8);
        let mut code = HuffmanCode {
            lengths,
            codes: vec![0; n],
        };
        code.assign_canonical();
        code
    }

    /// Rebuild from serialized lengths (the decoder side).
    pub fn from_lengths(lengths: Vec<u8>) -> Option<HuffmanCode> {
        // Validate Kraft inequality and the length cap.
        let mut kraft = 0u64;
        let mut any = false;
        for &l in &lengths {
            if l > MAX_LEN as u8 {
                return None;
            }
            if l > 0 {
                any = true;
                kraft += 1u64 << (MAX_LEN - l as u32);
            }
        }
        if !any || kraft > 1u64 << MAX_LEN {
            return None;
        }
        let mut code = HuffmanCode {
            codes: vec![0; lengths.len()],
            lengths,
        };
        code.assign_canonical();
        Some(code)
    }

    fn assign_canonical(&mut self) {
        // Count lengths, assign first code per length, then per-symbol codes
        // in symbol order (canonical form).
        let mut count = [0u32; (MAX_LEN + 1) as usize];
        for &l in &self.lengths {
            count[l as usize] += 1;
        }
        // Absent symbols (length 0) take part in no code space.
        count[0] = 0;
        let mut next = [0u32; (MAX_LEN + 2) as usize];
        let mut code = 0u32;
        for len in 1..=MAX_LEN {
            code = (code + count[(len - 1) as usize]) << 1;
            next[len as usize] = code;
        }
        for (i, &l) in self.lengths.iter().enumerate() {
            if l > 0 {
                self.codes[i] = next[l as usize];
                next[l as usize] += 1;
            }
        }
    }

    /// Append the code for `symbol` to the writer.
    #[inline]
    pub fn encode(&self, symbol: usize, w: &mut BitWriter) {
        let len = self.lengths[symbol];
        debug_assert!(len > 0, "encoding absent symbol {symbol}");
        w.write_bits(self.codes[symbol] as u64, len as u32);
    }

    /// Serialize the table. Large alphabets with few used symbols (the
    /// normal case for quantization bins) are stored sparsely as
    /// (symbol, length) pairs so the table does not dominate the stream.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        let n = self.lengths.len();
        let used = self.lengths.iter().filter(|&&l| l > 0).count();
        out.extend_from_slice(&(n as u32).to_le_bytes());
        if used * 5 < n {
            out.push(1); // sparse
            out.extend_from_slice(&(used as u32).to_le_bytes());
            for (sym, &l) in self.lengths.iter().enumerate() {
                if l > 0 {
                    out.extend_from_slice(&(sym as u32).to_le_bytes());
                    out.push(l);
                }
            }
        } else {
            out.push(0); // dense
            out.extend_from_slice(&self.lengths);
        }
    }

    /// Deserialize a table; returns (code, bytes consumed).
    pub fn deserialize(bytes: &[u8]) -> Option<(HuffmanCode, usize)> {
        if bytes.len() < 5 {
            return None;
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        if n == 0 || n > 1 << 24 {
            return None;
        }
        match bytes[4] {
            0 => {
                if bytes.len() < 5 + n {
                    return None;
                }
                let lengths = bytes[5..5 + n].to_vec();
                HuffmanCode::from_lengths(lengths).map(|c| (c, 5 + n))
            }
            1 => {
                if bytes.len() < 9 {
                    return None;
                }
                let used = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
                if bytes.len() < 9 + used * 5 {
                    return None;
                }
                let mut lengths = vec![0u8; n];
                for k in 0..used {
                    let off = 9 + k * 5;
                    let sym = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
                    if sym >= n {
                        return None;
                    }
                    lengths[sym] = bytes[off + 4];
                }
                HuffmanCode::from_lengths(lengths).map(|c| (c, 9 + used * 5))
            }
            _ => None,
        }
    }

    /// Build a decoder for this code.
    pub fn decoder(&self) -> HuffmanDecoder {
        let mut fast = vec![(0u32, 0u8); 1 << FAST_BITS];
        let mut slow: Vec<(u8, u32, u32)> = Vec::new(); // (len, code, symbol)
        for (sym, (&len, &code)) in self.lengths.iter().zip(&self.codes).enumerate() {
            if len == 0 {
                continue;
            }
            let len32 = len as u32;
            if len32 <= FAST_BITS {
                // All FAST_BITS-bit patterns with this prefix decode to sym.
                let shift = FAST_BITS - len32;
                let base = code << shift;
                for fill in 0..(1u32 << shift) {
                    fast[(base | fill) as usize] = (sym as u32, len);
                }
            } else {
                slow.push((len, code, sym as u32));
            }
        }
        slow.sort_unstable();
        HuffmanDecoder { fast, slow }
    }
}

/// Table-driven decoder.
#[derive(Debug)]
pub struct HuffmanDecoder {
    /// Indexed by the next `FAST_BITS` bits: (symbol, code length); length 0
    /// marks a long code that needs the slow path.
    fast: Vec<(u32, u8)>,
    /// Long codes, sorted by (length, code) for binary search.
    slow: Vec<(u8, u32, u32)>,
}

impl HuffmanDecoder {
    /// Decode one symbol; `None` on malformed/truncated input.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Option<u32> {
        let avail = r.remaining().min(FAST_BITS as usize) as u32;
        if avail == 0 {
            return None;
        }
        let peek = (r.peek_bits(avail)? << (FAST_BITS - avail)) as u32;
        let (sym, len) = self.fast[peek as usize];
        if len > 0 && len as u32 <= avail {
            r.skip_bits(len as u32);
            return Some(sym);
        }
        // Long code: accumulate bits and search the sorted (len, code) list.
        let mut code = 0u32;
        let mut len = 0u8;
        while (len as u32) < MAX_LEN {
            code = (code << 1) | r.read_bits(1)? as u32;
            len += 1;
            if len as u32 > FAST_BITS {
                if let Ok(i) = self.slow.binary_search_by(|e| (e.0, e.1).cmp(&(len, code))) {
                    return Some(self.slow[i].2);
                }
            }
        }
        None
    }
}

/// Flatten over-long codes to `max` bits, preserving the Kraft inequality
/// (simple heuristic: clamp, then repair by lengthening the shortest codes).
fn limit_lengths(lengths: &mut [u8], max: u8) {
    let mut kraft: i64 = 0;
    let unit = 1i64 << max;
    for l in lengths.iter_mut() {
        if *l > max {
            *l = max;
        }
        if *l > 0 {
            kraft += unit >> *l;
        }
    }
    // If over-subscribed, lengthen the shortest codes until it fits.
    while kraft > unit {
        // Find the symbol with the smallest length > 0 that can grow.
        let mut best: Option<usize> = None;
        for (i, &l) in lengths.iter().enumerate() {
            if l > 0 && l < max && best.is_none_or(|b| l < lengths[b]) {
                best = Some(i);
            }
        }
        let i = best.expect("cannot repair Huffman lengths");
        kraft -= unit >> lengths[i];
        lengths[i] += 1;
        kraft += unit >> lengths[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32], alphabet: usize) {
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for &s in symbols {
            code.encode(s as usize, &mut w);
        }
        let bytes = w.into_bytes();

        let mut ser = Vec::new();
        code.serialize(&mut ser);
        let (code2, used) = HuffmanCode::deserialize(&ser).unwrap();
        assert_eq!(used, ser.len());
        assert_eq!(code2.lengths, code.lengths);

        let dec = code2.decoder();
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(dec.decode(&mut r), Some(s));
        }
    }

    #[test]
    fn roundtrip_small_alphabet() {
        roundtrip(&[0, 1, 2, 1, 0, 0, 0, 3, 2, 1, 0], 4);
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[5; 100], 8);
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        // Geometric-ish: symbol i has frequency 2^(16-i).
        let mut symbols = Vec::new();
        for i in 0..16u32 {
            for _ in 0..(1 << (16 - i)) {
                symbols.push(i);
            }
        }
        roundtrip(&symbols, 16);
    }

    #[test]
    fn roundtrip_large_alphabet() {
        let symbols: Vec<u32> = (0..5000u32).map(|i| (i * i) % 1024).collect();
        roundtrip(&symbols, 1024);
    }

    #[test]
    fn skewed_code_is_shorter_than_uniform() {
        let mut freqs = vec![1u64; 256];
        freqs[0] = 1_000_000;
        let code = HuffmanCode::from_frequencies(&freqs);
        assert!(code.lengths[0] < 4, "hot symbol must get a short code");
        assert!(code.lengths[255] > 4, "cold symbols get long codes");
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(HuffmanCode::deserialize(&[]).is_none());
        assert!(
            HuffmanCode::deserialize(&[1, 0, 0, 0]).is_none(),
            "truncated lengths"
        );
        // Kraft violation: three 1-bit codes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 1, 1]);
        assert!(HuffmanCode::deserialize(&bytes).is_none());
        // All-zero lengths.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        assert!(HuffmanCode::deserialize(&bytes).is_none());
    }

    #[test]
    fn decode_truncated_stream_is_none() {
        let freqs = vec![1u64, 1, 1, 1];
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        code.encode(0, &mut w);
        let bytes = w.into_bytes();
        let dec = code.decoder();
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode(&mut r).is_some());
        // Bits are exhausted (only padding remains, which may or may not
        // decode); drain and ensure we eventually get None without panicking.
        let mut guard = 0;
        while dec.decode(&mut r).is_some() {
            guard += 1;
            assert!(guard < 16, "decoder must run out of bits");
        }
    }

    #[test]
    fn limit_lengths_repairs_kraft() {
        let mut lengths = vec![30u8, 30, 2, 2, 2, 2];
        limit_lengths(&mut lengths, 24);
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (24 - l as u32))
            .sum();
        assert!(kraft <= 1 << 24);
    }
}
