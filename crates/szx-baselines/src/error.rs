//! Shared error type for the baseline codecs.

use core::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Bad arguments (dims/data mismatch, non-finite bound, ...).
    Invalid(String),
    /// Malformed or truncated compressed stream.
    Corrupt(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Invalid(m) => write!(f, "invalid input: {m}"),
            BaselineError::Corrupt(m) => write!(f, "corrupt stream: {m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

pub type Result<T> = core::result::Result<T, BaselineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(BaselineError::Invalid("x".into())
            .to_string()
            .contains("invalid"));
        assert!(BaselineError::Corrupt("y".into())
            .to_string()
            .contains("corrupt"));
    }
}
