//! Property-based tests for the baseline codecs: error bounds always hold,
//! lossless really is lossless, and corrupt streams never panic.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use szx_baselines::{huffman::HuffmanCode, lzlike, szlike, zfplike};
use szx_core::bitio::{BitReader, BitWriter};

fn grids() -> impl Strategy<Value = ([usize; 3], Vec<f32>)> {
    (1usize..40, 1usize..12, 1usize..6).prop_flat_map(|(nx, ny, nz)| {
        let n = nx * ny * nz;
        pvec(
            prop_oneof![-1e6f32..1e6f32, -1.0f32..1.0, Just(0.0f32)],
            n..=n,
        )
        .prop_map(move |v| ([nx, ny, nz], v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn szlike_respects_bound((dims, data) in grids(), eb_exp in -6i32..0) {
        let eb = 10f64.powi(eb_exp);
        let bytes = szlike::compress(&data, dims, eb).unwrap();
        let (back, bdims) = szlike::decompress(&bytes).unwrap();
        prop_assert_eq!(bdims, dims);
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            prop_assert!((a as f64 - b as f64).abs() <= eb, "i={}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn zfplike_respects_bound((dims, data) in grids(), eb_exp in -6i32..0) {
        let eb = 10f64.powi(eb_exp);
        let bytes = zfplike::compress(&data, dims, eb).unwrap();
        let (back, bdims) = zfplike::decompress(&bytes).unwrap();
        prop_assert_eq!(bdims, dims);
        // ZFP's accuracy mode (like the real library) cannot push the error
        // below the max-precision granularity of a block with a huge
        // dynamic range: with all 32 bitplanes kept, quantization +
        // transform round-off still cost about 2^(emax-30+2d+2). The
        // guaranteed bound is therefore max(eb, granularity); compute the
        // (conservative) global granularity from the data's max magnitude.
        let d = if dims[2] > 1 { 3 } else if dims[1] > 1 { 2 } else { 1 };
        let gmax = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let gemax = if gmax > 0.0 { gmax.log2().floor() as i32 + 1 } else { -126 };
        let floor = 2f64.powi(gemax - 30 + 2 * d + 2);
        let allowed = eb.max(floor);
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            prop_assert!(
                (a as f64 - b as f64).abs() <= allowed,
                "i={}: {} vs {} (err {}, allowed {})",
                i, a, b, (a as f64 - b as f64).abs(), allowed
            );
        }
    }

    #[test]
    fn lzlike_is_lossless(data in pvec(any::<u8>(), 1..4000)) {
        let c = lzlike::compress(&data).unwrap();
        prop_assert_eq!(lzlike::decompress(&c).unwrap(), data);
    }

    #[test]
    fn huffman_roundtrips_any_symbol_stream(symbols in pvec(0u32..500, 1..2000)) {
        let mut freqs = vec![0u64; 500];
        for &s in &symbols {
            freqs[s as usize] += 1;
        }
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(s as usize, &mut w);
        }
        let bytes = w.into_bytes();
        let dec = code.decoder();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(dec.decode(&mut r), Some(s));
        }
    }

    #[test]
    fn corrupt_szlike_streams_never_panic(
        (dims, data) in grids(),
        flip in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = szlike::compress(&data, dims, 1e-3).unwrap();
        let i = flip.index(bytes.len());
        bytes[i] = byte;
        let _ = szlike::decompress(&bytes);
    }

    #[test]
    fn corrupt_zfplike_streams_never_panic(
        (dims, data) in grids(),
        flip in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = zfplike::compress(&data, dims, 1e-3).unwrap();
        let i = flip.index(bytes.len());
        bytes[i] = byte;
        let _ = zfplike::decompress(&bytes);
    }

    #[test]
    fn corrupt_lzlike_streams_never_panic(
        data in pvec(any::<u8>(), 1..2000),
        flip in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = lzlike::compress(&data).unwrap();
        let i = flip.index(bytes.len());
        bytes[i] = byte;
        let _ = lzlike::decompress(&bytes);
    }

    #[test]
    fn szlike_nonfinite_values_roundtrip(
        (dims, mut data) in grids(),
        pos in any::<prop::sample::Index>(),
    ) {
        let i = pos.index(data.len());
        data[i] = f32::NAN;
        let bytes = szlike::compress(&data, dims, 1e-4).unwrap();
        let (back, _) = szlike::decompress(&bytes).unwrap();
        prop_assert!(back[i].is_nan());
    }
}
