//! Figure 2: CDF of per-block relative value range for block sizes
//! 8..128, on the same four fields as Figure 1. Prints the CDF series and
//! writes CSVs under results/.

use std::fmt::Write as _;

use bench::{results_path, scale_from_env, seed_for};
use szx_data::Application;
use szx_metrics::block_range_cdf;

fn main() {
    let scale = scale_from_env();
    let panels: [(Application, &str, f64); 4] = [
        (Application::Miranda, "pressure", 0.1),
        (Application::Nyx, "temperature", 0.4),
        (Application::QmcPack, "inspline", 0.1),
        (Application::Hurricane, "U", 0.3),
    ];
    let block_sizes = [8usize, 16, 32, 64, 128];
    println!("Figure 2: CDF of block relative value range ({scale:?})");
    for (app, field_name, xmax) in panels {
        let ds = app.generate(scale, seed_for(app));
        let field = ds.field(field_name).unwrap_or_else(|| &ds.fields[0]);
        println!("\n  {} ({}), x in [0, {xmax}]", ds.name, field.name);
        let points: Vec<f64> = (0..=20).map(|i| xmax * i as f64 / 20.0).collect();
        let mut csv = String::from("range");
        for &bs in &block_sizes {
            write!(csv, ",bs{bs}").unwrap();
        }
        csv.push('\n');
        let series: Vec<Vec<f64>> = block_sizes
            .iter()
            .map(|&bs| block_range_cdf(&field.data, bs, &points))
            .collect();
        print!("  {:>8}", "range");
        for &bs in &block_sizes {
            print!(" {:>7}", format!("bs={bs}"));
        }
        println!();
        for (pi, &p) in points.iter().enumerate() {
            write!(csv, "{p:.5}").unwrap();
            print!("  {p:>8.4}");
            for s in &series {
                print!(" {:>6.1}%", s[pi] * 100.0);
                write!(csv, ",{:.4}", s[pi]).unwrap();
            }
            println!();
            csv.push('\n');
        }
        let path = results_path(&format!(
            "fig2_{}_{}.csv",
            ds.name.to_lowercase(),
            field.name.replace('-', "_")
        ));
        std::fs::write(&path, csv).expect("write csv");
        // The paper's qualitative claim: smaller blocks dominate the CDF.
        let small = series[0][2];
        let large = series[4][2];
        println!(
            "  (bs=8 CDF at {:.3}: {:.0}%  >=  bs=128: {:.0}%)",
            points[2],
            small * 100.0,
            large * 100.0
        );
    }
}
