//! Figure 16: data dumping/loading performance on a ThetaGPU-like system
//! (Nyx dataset, 64-1024 ranks, REL 1e-2/1e-3/1e-4). Compression is
//! measured; the PFS transfer is modeled (szx-io-sim).

use bench::{scale_from_env, seed_for, REL_BOUNDS};
use szx_data::Application;
use szx_io_sim::{dump, load, IoCodec, PfsConfig};

fn main() {
    let scale = scale_from_env();
    let ds = Application::Nyx.generate(scale, seed_for(Application::Nyx));
    // Per-rank payload: the Nyx baryon-density field, tiled up to >= 32 MB
    // so the codec-vs-io proportions at laptop scale mirror the paper's
    // 512 MB-per-rank runs (weak scaling: every rank compresses its own
    // copy of the Nyx data).
    let base = ds.field("baryon-density").expect("field");
    let copies = (32usize << 20).div_ceil(base.raw_bytes()).max(1);
    let mut data = Vec::with_capacity(base.data.len() * copies);
    for _ in 0..copies {
        data.extend_from_slice(&base.data);
    }
    let dims = [base.dims[0], base.dims[1], base.dims[2] * copies];
    let field = szx_data::Field::new(base.name.clone(), dims, data);
    let pfs = PfsConfig::theta_like();
    let ranks = [64usize, 128, 256, 512, 1024];

    for rel in REL_BOUNDS {
        let eb = rel * field.value_range();
        for (label, loading) in [("dumping", false), ("loading", true)] {
            println!("\nFigure 16: {label} elapsed time (s), REL={rel:.0e} ({scale:?})");
            print!("{:<6}", "codec");
            for &r in &ranks {
                print!(" {:>16}", format!("{r} ranks"));
            }
            println!();
            println!(
                "{:<6} {}",
                "",
                ranks
                    .map(|_| format!("{:>8} {:>7}", "codec", "io"))
                    .join(" ")
            );
            for codec in [IoCodec::Szx, IoCodec::SzLike, IoCodec::ZfpLike] {
                print!("{:<6}", codec.name());
                for &r in &ranks {
                    let b = if loading {
                        load(&field.data, field.dims, eb, codec, r, &pfs)
                    } else {
                        dump(&field.data, field.dims, eb, codec, r, &pfs)
                    };
                    print!(" {:>8.3} {:>7.3}", b.codec_time, b.io_time);
                }
                println!();
            }
        }
    }
    println!("\n(paper: SZx takes ~1/3 to 1/2 the dump/load time of SZ and ZFP because");
    println!(" compression dominates end-to-end time at ThetaGPU's I/O bandwidth)");
}
