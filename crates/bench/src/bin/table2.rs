//! Table 2: the application datasets. Prints the registry metadata plus the
//! dimensions actually generated at the selected scale.

use bench::{scale_from_env, seed_for};
use szx_data::Application;

fn main() {
    let scale = scale_from_env();
    println!("Table 2: Applications (synthetic stand-ins; scale {scale:?})");
    println!(
        "{:<12} {:>8}  {:<18} {:<18} description",
        "Application", "#fields", "full size/field", "generated size"
    );
    for app in Application::ALL {
        let (count, dims, desc) = app.spec();
        let ds = app.generate_limited(scale, seed_for(app), 1);
        let g = ds.fields[0].dims;
        println!(
            "{:<12} {:>8}  {:<18} {:<18} {}",
            app.short_name(),
            count,
            format!("{}x{}x{}", dims[0], dims[1], dims[2]),
            format!("{}x{}x{}", g[0], g[1], g[2]),
            desc
        );
    }
}
