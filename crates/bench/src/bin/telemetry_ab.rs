//! Interleaved A/B/C check of telemetry overhead on a 64 MB field,
//! reported as min-of-N (robust to background load): the acceptance bar
//! is <2% for telemetry enabled and for the zone-stack sampler running at
//! its default rate. Interleaving the arms within each round cancels the
//! container-load drift that makes sequential benches lie.
use szx_core::SzxConfig;

fn field() -> Vec<f32> {
    let n = 16 * 1024 * 1024; // 64 MB of f32
    (0..n)
        .map(|i| {
            let x = i as f32 * 1.9e-4;
            // Slow envelope gates a fast carrier: long constant-block
            // plateaus plus busy non-constant stretches.
            let envelope = (x * 0.11).sin().max(0.0);
            envelope * (x * 37.0).sin() * 12.5
        })
        .collect()
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let data = field();
    let cfg = SzxConfig::relative(1e-3);
    for _ in 0..2 {
        szx_core::compress(&data, &cfg).unwrap();
    }
    const ARMS: [&str; 3] = ["disabled", "enabled", "enabled+sampler"];
    let mut best = [f64::INFINITY; 3];
    for round in 0..rounds {
        for (k, arm) in ARMS.into_iter().enumerate() {
            szx_telemetry::set_enabled(k >= 1);
            // The profiler start/stop (thread spawn/join) sits outside the
            // timed region, as it does in real runs.
            let profiler =
                (k == 2).then(|| szx_profile::Profiler::start(szx_profile::default_hz()));
            let t = std::time::Instant::now();
            let b = szx_core::compress(&data, &cfg).unwrap();
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if let Some(p) = profiler {
                p.stop();
            }
            best[k] = best[k].min(ms);
            println!("round {round} {arm:<15} {ms:8.2} ms  ({} bytes)", b.len());
        }
    }
    szx_telemetry::set_enabled(false);
    for k in 1..3 {
        let overhead = (best[k] - best[0]) / best[0] * 100.0;
        println!(
            "min {}: {:.2} ms vs disabled {:.2} ms, overhead {overhead:+.2}%",
            ARMS[k], best[k], best[0]
        );
    }
}
