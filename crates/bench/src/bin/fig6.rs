//! Figure 6: space overhead of the bitwise right-shift optimization
//! (Solution C vs exact-bit Solutions A/B), per Formula (6). For Hurricane
//! and Miranda at REL 1e-3/1e-4/1e-5 and block sizes 8..128, prints the
//! min / 2nd-min / mean / 2nd-max / max overhead across fields.

use bench::{scale_from_env, seed_for};
use szx_core::analysis::shift_overhead;
use szx_core::SzxConfig;
use szx_data::Application;

fn main() {
    let scale = scale_from_env();
    let block_sizes = [8usize, 16, 32, 64, 128];
    println!("Figure 6: space overhead of bitwise right shifting ({scale:?})");
    for app in [Application::Hurricane, Application::Miranda] {
        let ds = app.generate(scale, seed_for(app));
        for rel in [1e-3, 1e-4, 1e-5] {
            println!("\n  {} (REL={rel:.0e})", ds.name);
            println!(
                "  {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "bs", "min", "2nd-min", "mean", "2nd-max", "max"
            );
            for &bs in &block_sizes {
                let mut overheads: Vec<f64> = ds
                    .fields
                    .iter()
                    .map(|f| {
                        let cfg = SzxConfig::relative(rel).with_block_size(bs);
                        shift_overhead(&f.data, &cfg)
                            .expect("overhead")
                            .overhead_ratio()
                    })
                    .collect();
                overheads.sort_by(|a, b| a.total_cmp(b));
                let n = overheads.len();
                let mean = overheads.iter().sum::<f64>() / n as f64;
                println!(
                    "  {:>6} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
                    bs,
                    overheads[0] * 100.0,
                    overheads[1.min(n - 1)] * 100.0,
                    mean * 100.0,
                    overheads[n.saturating_sub(2)] * 100.0,
                    overheads[n - 1] * 100.0
                );
            }
        }
    }
    println!("\n  (paper: max overhead < 12%, mean around or below 5%)");
}
