//! Figure 12: visual quality of SZx on the Hurricane CLOUD field at
//! REL 1e-3, 4e-3, and 1e-2 — reports CR, PSNR, SSIM, and renders the
//! original and reconstructed slices to PPM heatmaps under results/.

use bench::{results_path, scale_from_env, seed_for};
use szx_core::SzxConfig;
use szx_data::Application;
use szx_metrics::{distortion, ssim_2d, to_ppm};

fn main() {
    let scale = scale_from_env();
    let ds = Application::Hurricane.generate(scale, seed_for(Application::Hurricane));
    let field = ds.field("CLOUD").expect("CLOUD field");
    let z = field.dims[2] / 2;
    let (w, h, orig_slice) = field.slice_z(z);
    std::fs::write(
        results_path("fig12_original.ppm"),
        to_ppm(&orig_slice, w, h),
    )
    .unwrap();

    println!("Figure 12: SZx visual quality on Hurricane CLOUD ({scale:?})");
    println!("{:>8} {:>8} {:>8} {:>8}", "REL", "CR", "PSNR", "SSIM");
    for rel in [1e-3, 4e-3, 1e-2] {
        let cfg = SzxConfig::relative(rel);
        let bytes = szx_core::compress(&field.data, &cfg).expect("compress");
        let back: Vec<f32> = szx_core::decompress(&bytes).expect("decompress");
        let cr = field.raw_bytes() as f64 / bytes.len() as f64;
        let stats = distortion(&field.data, &back);
        let plane = w * h;
        let back_slice = &back[z * plane..(z + 1) * plane];
        let ssim = ssim_2d(&orig_slice, back_slice, w, h, 0);
        let file = results_path(&format!("fig12_rel{rel:.0e}.ppm"));
        std::fs::write(&file, to_ppm(back_slice, w, h)).unwrap();
        println!(
            "{rel:>8.0e} {cr:>8.2} {:>8.1} {ssim:>8.3}   -> {}",
            stats.psnr,
            file.display()
        );
    }
    println!(
        "(paper at e=1e-3/4e-3/1e-2: CR 14.6/18/20.6, PSNR 74.4/62/54.6, SSIM 0.93/0.89/0.865)"
    );
}
