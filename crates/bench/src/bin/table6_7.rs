//! Tables 6 & 7: multicore compression/decompression throughput (GB/s) of
//! omp-SZx (rayon), omp-ZFP-like, and omp-SZ-like. Matches the paper's
//! caveats: omp-SZ skips 2-D data (CESM) and omp-ZFP has no multithreaded
//! decompressor, so those cells print n/a.

use bench::{gbs, median_time, scale_from_env, seed_for, REL_BOUNDS};
use szx_baselines::chunked::{self, Codec};
use szx_core::SzxConfig;
use szx_data::Application;

fn main() {
    let scale = scale_from_env();
    let threads = rayon::current_num_threads();
    let datasets: Vec<_> = Application::ALL
        .iter()
        .map(|app| app.generate(scale, seed_for(*app)))
        .collect();

    for table in ["Table 6: compression", "Table 7: decompression"] {
        let decomp = table.contains("decompression");
        println!("\n{table} throughput on a multicore CPU (GB/s; {threads} threads; {scale:?})");
        print!("{:<6} {:>5} |", "codec", "REL");
        for app in Application::ALL {
            print!(" {:>8}", app.short_name());
        }
        println!();
        for codec in ["SZx", "ZFP", "SZ"] {
            for rel in REL_BOUNDS {
                print!("{codec:<6} {rel:>5.0e} |");
                for (ds, app) in datasets.iter().zip(Application::ALL) {
                    // Paper caveats reproduced faithfully.
                    if codec == "SZ" && app == Application::CesmAtm {
                        print!(" {:>8}", "n/a");
                        continue;
                    }
                    if codec == "ZFP" && decomp {
                        print!(" {:>8}", "n/a");
                        continue;
                    }
                    let mut total_bytes = 0usize;
                    let mut total_time = 0f64;
                    for f in &ds.fields {
                        let eb = (rel * f.value_range()).max(1e-30);
                        total_bytes += f.raw_bytes();
                        let t = match (codec, decomp) {
                            ("SZx", false) => {
                                let cfg = SzxConfig::absolute(eb);
                                median_time(3, || {
                                    szx_core::parallel::compress(&f.data, &cfg).expect("szx")
                                })
                            }
                            ("SZx", true) => {
                                let cfg = SzxConfig::absolute(eb);
                                let bytes =
                                    szx_core::parallel::compress(&f.data, &cfg).expect("szx");
                                let mut out = vec![0f32; f.data.len()];
                                median_time(3, || {
                                    szx_core::parallel::decompress_into(&bytes, &mut out)
                                        .expect("szx d")
                                })
                            }
                            ("ZFP", false) => median_time(3, || {
                                chunked::compress_par(&f.data, f.dims, eb, Codec::ZfpLike, threads)
                                    .expect("zfp")
                            }),
                            ("SZ", false) => median_time(3, || {
                                chunked::compress_par(&f.data, f.dims, eb, Codec::SzLike, threads)
                                    .expect("sz")
                            }),
                            _ => {
                                let bytes = chunked::compress_par(
                                    &f.data,
                                    f.dims,
                                    eb,
                                    Codec::SzLike,
                                    threads,
                                )
                                .expect("sz");
                                median_time(3, || chunked::decompress_par(&bytes).expect("sz d"))
                            }
                        };
                        total_time += t;
                    }
                    print!(" {:>8.2}", gbs(total_bytes, total_time));
                }
                println!();
            }
        }
    }
    println!("\n(paper shape: omp-SZx 3.4-6.8x omp-ZFP and 2.4-4.8x omp-SZ in compression,");
    println!(" 2.3-4.6x omp-SZ in decompression)");
}
