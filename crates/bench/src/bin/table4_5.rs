//! Tables 4 & 5: single-core compression and decompression throughput
//! (MB/s) of SZx, ZFP-like, and SZ-like across all six applications at
//! REL 1e-2 / 1e-3 / 1e-4. Per-application numbers are overall (all fields'
//! bytes over all fields' time), exactly like the paper.

use bench::{mbs, median_time, scale_from_env, seed_for, REL_BOUNDS};
use szx_baselines::{szlike, zfplike};
use szx_core::SzxConfig;
use szx_data::Application;

fn main() {
    let scale = scale_from_env();
    let datasets: Vec<_> = Application::ALL
        .iter()
        .map(|app| app.generate(scale, seed_for(*app)))
        .collect();

    for table in ["Table 4: compression", "Table 5: decompression"] {
        let decomp = table.contains("decompression");
        println!("\n{table} throughput on a single core (MB/s; scale {scale:?})");
        print!("{:<6} {:>5} |", "codec", "REL");
        for app in Application::ALL {
            print!(" {:>8}", app.short_name());
        }
        println!();
        for codec in ["SZx", "ZFP", "SZ"] {
            for rel in REL_BOUNDS {
                print!("{codec:<6} {rel:>5.0e} |");
                for ds in &datasets {
                    let mut total_bytes = 0usize;
                    let mut total_time = 0f64;
                    for f in &ds.fields {
                        let eb = (rel * f.value_range()).max(1e-30);
                        total_bytes += f.raw_bytes();
                        let t = match (codec, decomp) {
                            ("SZx", false) => {
                                let cfg = SzxConfig::absolute(eb);
                                median_time(3, || szx_core::compress(&f.data, &cfg).expect("szx"))
                            }
                            ("SZx", true) => {
                                let cfg = SzxConfig::absolute(eb);
                                let bytes = szx_core::compress(&f.data, &cfg).expect("szx");
                                let mut out = vec![0f32; f.data.len()];
                                median_time(3, || {
                                    szx_core::decompress_into(&bytes, &mut out).expect("szx d")
                                })
                            }
                            ("ZFP", false) => median_time(3, || {
                                zfplike::compress(&f.data, f.dims, eb).expect("zfp")
                            }),
                            ("ZFP", true) => {
                                let bytes = zfplike::compress(&f.data, f.dims, eb).expect("zfp");
                                median_time(3, || zfplike::decompress(&bytes).expect("zfp d"))
                            }
                            ("SZ", false) => median_time(3, || {
                                szlike::compress(&f.data, f.dims, eb).expect("sz")
                            }),
                            _ => {
                                let bytes = szlike::compress(&f.data, f.dims, eb).expect("sz");
                                median_time(3, || szlike::decompress(&bytes).expect("sz d"))
                            }
                        };
                        total_time += t;
                    }
                    print!(" {:>8.0}", mbs(total_bytes, total_time));
                }
                println!();
            }
        }
    }
    println!("\n(paper shape: SZx 2.5-5x faster than ZFP and 5-7x faster than SZ in");
    println!(" compression; 2-4x faster than both in decompression)");
}
