//! Compression-ratio / quality / speed trade-off characterization — the
//! quantitative study the paper's §8 names as future work ("characterize
//! the trade-off between the compression ratio and the performance").
//!
//! Sweeps the error bound over four decades for one field per application
//! and prints the full rate-distortion-throughput surface for SZx and the
//! two lossy baselines.

use bench::{mbs, median_time, scale_from_env, seed_for};
use szx_baselines::{szlike, zfplike};
use szx_core::SzxConfig;
use szx_data::Application;
use szx_metrics::distortion;

fn main() {
    let scale = scale_from_env();
    let picks = [
        (Application::Miranda, "pressure"),
        (Application::Nyx, "temperature"),
        (Application::Hurricane, "U"),
    ];
    let bounds = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5];
    for (app, field_name) in picks {
        let ds = app.generate(scale, seed_for(app));
        let f = ds.field(field_name).unwrap();
        println!(
            "\nTrade-off surface: {} / {} ({} elems, {scale:?})",
            ds.name,
            f.name,
            f.len()
        );
        println!(
            "{:<6} {:>7} | {:>8} {:>9} {:>11} {:>11}",
            "codec", "REL", "CR", "PSNR(dB)", "comp MB/s", "decomp MB/s"
        );
        for rel in bounds {
            let eb = rel * f.value_range();
            // SZx
            let cfg = SzxConfig::absolute(eb);
            let bytes = szx_core::compress(&f.data, &cfg).unwrap();
            let tc = median_time(3, || szx_core::compress(&f.data, &cfg).unwrap());
            let mut out = vec![0f32; f.data.len()];
            let td = median_time(3, || szx_core::decompress_into(&bytes, &mut out).unwrap());
            let q = distortion(&f.data, &out);
            println!(
                "{:<6} {:>7.0e} | {:>8.2} {:>9.1} {:>11.0} {:>11.0}",
                "SZx",
                rel,
                f.raw_bytes() as f64 / bytes.len() as f64,
                q.psnr,
                mbs(f.raw_bytes(), tc),
                mbs(f.raw_bytes(), td)
            );
            // Baselines
            let zb = zfplike::compress(&f.data, f.dims, eb).unwrap();
            let tc = median_time(3, || zfplike::compress(&f.data, f.dims, eb).unwrap());
            let td = median_time(3, || zfplike::decompress(&zb).unwrap());
            let (zback, _) = zfplike::decompress(&zb).unwrap();
            let q = distortion(&f.data, &zback);
            println!(
                "{:<6} {:>7.0e} | {:>8.2} {:>9.1} {:>11.0} {:>11.0}",
                "ZFP",
                rel,
                f.raw_bytes() as f64 / zb.len() as f64,
                q.psnr,
                mbs(f.raw_bytes(), tc),
                mbs(f.raw_bytes(), td)
            );
            let sb = szlike::compress(&f.data, f.dims, eb).unwrap();
            let tc = median_time(3, || szlike::compress(&f.data, f.dims, eb).unwrap());
            let td = median_time(3, || szlike::decompress(&sb).unwrap());
            let (sback, _) = szlike::decompress(&sb).unwrap();
            let q = distortion(&f.data, &sback);
            println!(
                "{:<6} {:>7.0e} | {:>8.2} {:>9.1} {:>11.0} {:>11.0}",
                "SZ",
                rel,
                f.raw_bytes() as f64 / sb.len() as f64,
                q.psnr,
                mbs(f.raw_bytes(), tc),
                mbs(f.raw_bytes(), td)
            );
        }
    }
    println!("\n(the §8 future-work study: at every bound, SZx trades CR for 3-10x speed;");
    println!(" the CR gap narrows at loose bounds where constant blocks dominate)");
}
