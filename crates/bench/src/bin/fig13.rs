//! Figure 13: distribution of compression errors under SZx for nine fields
//! at absolute error bounds 1e-4 and 1e-6. Prints the per-field PDF over
//! [-eb, eb] (the coverage column verifies strict error-boundedness) and
//! writes CSVs under results/.

use std::fmt::Write as _;

use bench::{results_path, scale_from_env, seed_for};
use szx_core::SzxConfig;
use szx_data::Application;
use szx_metrics::error_pdf;

fn main() {
    let scale = scale_from_env();
    let fields: [(Application, &str); 9] = [
        (Application::CesmAtm, "CLDHGH"),
        (Application::CesmAtm, "PHIS"),
        (Application::Hurricane, "CLOUD"),
        (Application::Hurricane, "QSNOW"),
        (Application::Miranda, "pressure"),
        (Application::Miranda, "density"),
        (Application::Nyx, "baryon-density"),
        (Application::QmcPack, "inspline"),
        (Application::ScaleLetkf, "V"),
    ];
    const BINS: usize = 21;
    for eb in [1e-4f64, 1e-6] {
        println!("\nFigure 13: error PDF at absolute eb={eb:.0e} ({scale:?})");
        println!(
            "{:<26} {:>9} {:>10} {:>10}  pdf shape (low..0..high)",
            "field", "coverage", "max|err|", "center%"
        );
        let mut csv = String::from("field,bin_center,density\n");
        for (app, name) in fields {
            let ds = app.generate(scale, seed_for(app));
            let field = ds.field(name).expect(name);
            let bytes =
                szx_core::compress(&field.data, &SzxConfig::absolute(eb)).expect("compress");
            let back: Vec<f32> = szx_core::decompress(&bytes).expect("decompress");
            let pdf = error_pdf(&field.data, &back, eb, BINS);
            let max_err = field
                .data
                .iter()
                .zip(&back)
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .fold(0.0f64, f64::max);
            // Sparkline-ish shape: normalize to the hottest bin.
            let hot = pdf
                .density
                .iter()
                .cloned()
                .fold(0.0f64, f64::max)
                .max(1e-300);
            let shape: String = pdf
                .density
                .iter()
                .map(|&d| {
                    let t = d / hot;
                    match (t * 4.0) as usize {
                        0 => '.',
                        1 => ':',
                        2 => '+',
                        3 => '*',
                        _ => '#',
                    }
                })
                .collect();
            let center_mass = pdf.density[BINS / 2] / pdf.density.iter().sum::<f64>().max(1e-300);
            let label = format!("{}({})", ds.name, name);
            println!(
                "{:<26} {:>8.2}% {:>10.2e} {:>9.1}%  {}",
                label,
                pdf.coverage() * 100.0,
                max_err,
                center_mass * 100.0,
                shape
            );
            for (c, d) in pdf.centers.iter().zip(&pdf.density) {
                writeln!(csv, "{label},{c:.3e},{d:.5e}").unwrap();
            }
            assert!(
                max_err <= eb,
                "error bound violated for {label}: {max_err} > {eb}"
            );
        }
        std::fs::write(results_path(&format!("fig13_eb{eb:.0e}.csv")), csv).unwrap();
    }
    println!("\n(all coverages 100% => SZx always respects the user-specified bound)");
}
