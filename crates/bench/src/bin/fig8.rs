//! Figure 8: compression quality of Miranda under various block sizes —
//! CR and PSNR per field for block sizes 8..224 at REL 1e-3 and 1e-4.

use bench::{scale_from_env, seed_for};
use szx_core::SzxConfig;
use szx_data::Application;
use szx_metrics::distortion;

fn main() {
    let scale = scale_from_env();
    let ds = Application::Miranda.generate(scale, seed_for(Application::Miranda));
    let block_sizes = [8usize, 16, 32, 64, 128, 224];
    for rel in [1e-3, 1e-4] {
        for metric in ["CR", "PSNR"] {
            println!("\nFigure 8: Miranda {metric} (REL={rel:.0e}, {scale:?})");
            print!("{:<14}", "field");
            for &bs in &block_sizes {
                print!(" {:>8}", format!("bs={bs}"));
            }
            println!();
            for field in &ds.fields {
                print!("{:<14}", field.name);
                for &bs in &block_sizes {
                    let cfg = SzxConfig::relative(rel).with_block_size(bs);
                    let bytes = szx_core::compress(&field.data, &cfg).expect("compress");
                    if metric == "CR" {
                        let cr = (field.raw_bytes()) as f64 / bytes.len() as f64;
                        print!(" {cr:>8.2}");
                    } else {
                        let back: Vec<f32> = szx_core::decompress(&bytes).expect("decompress");
                        let stats = distortion(&field.data, &back);
                        print!(" {:>8.1}", stats.psnr);
                    }
                }
                println!();
            }
        }
    }
    println!("\n(paper: CR grows then saturates around bs=128; PSNR flat across bs)");
}
