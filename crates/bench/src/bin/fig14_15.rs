//! Figures 14 & 15: GPU compression/decompression throughput per
//! application on A100-like and V100-like devices — evaluated on the SIMT
//! execution model. cuSZx bars come from executing the simulated kernels
//! and counting operations; cuSZ/cuZFP bars come from the operation-count
//! models in `szx_gpu_sim::models` (see EXPERIMENTS.md for the caveats).

use bench::{scale_from_env, seed_for};
use szx_data::Application;
use szx_gpu_sim::models::{cusz_model, cuszx_model, cuzfp_model, ModelResult};
use szx_gpu_sim::{A100, V100};

fn main() {
    let scale = scale_from_env();
    let rel = 1e-3;
    println!("Figures 14/15: modeled GPU throughput per application (REL={rel:.0e}, {scale:?})");
    for gpu in [A100, V100] {
        for decomp in [false, true] {
            let label = if decomp {
                "decompression (Fig 15)"
            } else {
                "compression (Fig 14)"
            };
            println!("\n  {} — {label} (GB/s)", gpu.name);
            print!("  {:<8}", "codec");
            for app in Application::ALL {
                print!(" {:>9}", app.short_name());
            }
            println!();
            let mut rows: Vec<(&str, Vec<f64>)> = vec![
                ("cuSZx", Vec::new()),
                ("cuSZ", Vec::new()),
                ("cuZFP", Vec::new()),
            ];
            for app in Application::ALL {
                let ds = app.generate(scale, seed_for(app));
                // Aggregate model costs over all fields of the app.
                let mut totals: Vec<(usize, f64)> = vec![(0, 0.0); 3];
                for f in &ds.fields {
                    let eb = (rel * f.value_range()).max(1e-30);
                    let results: [ModelResult; 3] = [
                        cuszx_model(&f.data, eb),
                        cusz_model(&f.data, f.dims, eb),
                        cuzfp_model(&f.data, f.dims, eb),
                    ];
                    for (slot, r) in totals.iter_mut().zip(&results) {
                        let cost = if decomp { &r.decomp } else { &r.comp };
                        slot.0 += r.raw_len;
                        slot.1 += gpu.time(cost);
                    }
                }
                for (row, &(bytes, time)) in rows.iter_mut().zip(&totals) {
                    row.1.push(bytes as f64 / time / 1e9);
                }
            }
            for (name, vals) in rows {
                print!("  {name:<8}");
                for v in vals {
                    print!(" {v:>9.0}");
                }
                println!();
            }
        }
    }
    println!("\n(paper, A100: cuSZx 150-264 GB/s compress & 150-446 decompress;");
    println!(" cuSZ/cuZFP 9.8-86 GB/s — cuSZx wins by 2-16x)");
}
