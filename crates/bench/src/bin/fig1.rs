//! Figure 1: visual demonstration of the high smoothness of scientific
//! datasets. Renders the same four slices the paper shows — Miranda
//! pressure, Nyx temperature, QMCPack orbital slice, Hurricane U — as PPM
//! heatmaps under results/.

use bench::{results_path, scale_from_env, seed_for};
use szx_data::Application;
use szx_metrics::to_ppm;

fn main() {
    let scale = scale_from_env();
    let panels: [(Application, &str, &str); 4] = [
        (
            Application::Miranda,
            "pressure",
            "fig1a_miranda_pressure.ppm",
        ),
        (Application::Nyx, "temperature", "fig1b_nyx_temperature.ppm"),
        (Application::QmcPack, "inspline", "fig1c_qmcpack_slice.ppm"),
        (Application::Hurricane, "U", "fig1d_hurricane_u.ppm"),
    ];
    println!("Figure 1: smoothness visualization ({scale:?})");
    for (app, field_name, file) in panels {
        let ds = app.generate(scale, seed_for(app));
        let field = ds.field(field_name).unwrap_or_else(|| &ds.fields[0]);
        // Mid-depth slice, like the paper's slice128/slice500/slice60.
        let z = field.dims[2] / 2;
        let (w, h, slice) = field.slice_z(z);
        let path = results_path(file);
        std::fs::write(&path, to_ppm(&slice, w, h)).expect("write ppm");
        println!(
            "  {:<10} {:<12} slice z={:<4} {}x{} -> {}",
            ds.name,
            field.name,
            z,
            w,
            h,
            path.display()
        );
    }
}
