//! Table 3: compression ratios (min / overall harmonic mean / max across
//! fields) for SZx, ZFP-like, SZ-like, and the lossless LZ baseline, on all
//! six applications at REL 1e-2 / 1e-3 / 1e-4.

use bench::{scale_from_env, seed_for, REL_BOUNDS};
use szx_baselines::{lzlike, szlike, zfplike};
use szx_core::SzxConfig;
use szx_data::{Application, Field};
use szx_metrics::aggregate;

fn field_cr(field: &Field, compressed_len: usize) -> f64 {
    field.raw_bytes() as f64 / compressed_len as f64
}

fn main() {
    let scale = scale_from_env();
    println!("Table 3: compression ratios (min/avg/max per app; scale {scale:?})");
    println!(
        "{:<6} {:>5} | {}",
        "codec",
        "REL",
        Application::ALL
            .map(|a| format!("{:>20}", a.short_name()))
            .join(" ")
    );

    let datasets: Vec<_> = Application::ALL
        .iter()
        .map(|app| app.generate(scale, seed_for(*app)))
        .collect();

    for codec in ["SZx", "ZFP", "SZ"] {
        for rel in REL_BOUNDS {
            print!("{codec:<6} {rel:>5.0e} |");
            for ds in &datasets {
                let ratios: Vec<f64> = ds
                    .fields
                    .iter()
                    .map(|f| {
                        let eb = rel * f.value_range();
                        let len = match codec {
                            "SZx" => szx_core::compress(&f.data, &SzxConfig::absolute(eb))
                                .expect("szx")
                                .len(),
                            "ZFP" => {
                                // zfp accuracy mode needs eb > 0; constant
                                // fields degrade to a tiny positive bound.
                                let eb = if eb > 0.0 { eb } else { 1e-30 };
                                zfplike::compress(&f.data, f.dims, eb).expect("zfp").len()
                            }
                            _ => szlike::compress(&f.data, f.dims, eb).expect("sz").len(),
                        };
                        field_cr(f, len)
                    })
                    .collect();
                let s = aggregate(&ratios);
                print!(" {:>5.1}/{:>5.1}/{:>6.1}", s.min, s.harmonic_mean, s.max);
            }
            println!();
        }
    }
    // Lossless reference row (bound-independent).
    print!("{:<6} {:>5} |", "zstd", "-");
    for ds in &datasets {
        let ratios: Vec<f64> = ds
            .fields
            .iter()
            .map(|f| field_cr(f, lzlike::compress_f32(&f.data).expect("lz").len()))
            .collect();
        let s = aggregate(&ratios);
        print!(" {:>5.2}/{:>5.2}/{:>6.2}", s.min, s.harmonic_mean, s.max);
    }
    println!();
    println!("\n(paper shape: CR(SZ) > CR(ZFP) > CR(SZx) >> CR(zstd at 1.1-1.5))");
}
