//! `observatory` — the szx benchmark observatory driver.
//!
//! ```text
//! observatory run      [--scale tiny|small|medium|large|full] [--samples N]
//!                      [--fields N] [--bounds 1e-2,1e-3,1e-4]
//!                      [--out-dir DIR] [--no-gate] [--ignore-throughput]
//!                      [--max-tput-drop F] [--max-ratio-drop F]
//!                      [--max-psnr-drop F] [--quiet]
//! observatory compare  <baseline.json> <current.json> [threshold flags]
//! observatory validate <file.json>
//! ```
//!
//! `run` sweeps the grid (see `bench::observatory`), writes the next
//! `BENCH_<n>.json` in `--out-dir` (default: the working directory), and —
//! unless `--no-gate` or there is no predecessor — compares against the
//! latest prior report, exiting non-zero on regression. `compare` diffs two
//! explicit reports; `validate` checks one against the schema. Both accept
//! a CLI run manifest (`szx … --manifest run.json`) anywhere a report is
//! expected — it loads as a one-record report.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench::observatory::{
    compare, latest_bench, next_bench_path, BenchReport, CompareConfig, RunOptions,
};
use szx_data::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        _ => {
            eprintln!(
                "usage: observatory run|compare|validate ... (see crates/bench/src/bin/observatory.rs)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(gate_passed) => {
            if gate_passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_f64(args: &[String], flag: &str) -> Result<Option<f64>, String> {
    flag_value(args, flag)
        .map(|v| v.parse().map_err(|_| format!("bad {flag} value {v:?}")))
        .transpose()
}

fn compare_config(args: &[String]) -> Result<CompareConfig, String> {
    let mut cfg = CompareConfig::default();
    if let Some(v) = parse_f64(args, "--max-tput-drop")? {
        cfg.max_throughput_drop = v;
    }
    if let Some(v) = parse_f64(args, "--max-ratio-drop")? {
        cfg.max_ratio_drop = v;
    }
    if let Some(v) = parse_f64(args, "--max-psnr-drop")? {
        cfg.max_psnr_drop_db = v;
    }
    if has_flag(args, "--ignore-throughput") {
        cfg.check_throughput = false;
    }
    Ok(cfg)
}

/// Accepts both `BENCH_<n>.json` reports and CLI run manifests (the
/// `szx … --manifest` output) — either side of a `compare` can be either.
fn load_report(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    bench::observatory::load_any(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Print findings; `Ok(true)` means the gate passed.
fn report_findings(
    baseline: &Path,
    findings: &[bench::observatory::Finding],
) -> Result<bool, String> {
    if findings.is_empty() {
        eprintln!("gate: OK against {}", baseline.display());
        return Ok(true);
    }
    eprintln!(
        "gate: {} regression(s) against {}:",
        findings.len(),
        baseline.display()
    );
    for f in findings {
        eprintln!("  {f}");
    }
    Ok(false)
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let scale = match flag_value(args, "--scale").as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("small") | None => Scale::Small,
        Some("medium") => Scale::Medium,
        Some("large") => Scale::Large,
        Some("full") => Scale::Full,
        Some(other) => return Err(format!("unknown scale {other:?}")),
    };
    let mut opts = RunOptions {
        scale,
        quiet: has_flag(args, "--quiet"),
        ..RunOptions::default()
    };
    if let Some(v) = flag_value(args, "--samples") {
        opts.samples = v
            .parse()
            .map_err(|_| format!("bad --samples value {v:?}"))?;
    }
    if let Some(v) = flag_value(args, "--fields") {
        opts.max_fields = v.parse().map_err(|_| format!("bad --fields value {v:?}"))?;
    }
    if let Some(v) = flag_value(args, "--bounds") {
        opts.bounds = v
            .split(',')
            .map(|b| b.parse().map_err(|_| format!("bad bound {b:?}")))
            .collect::<Result<_, String>>()?;
        if opts.bounds.is_empty() {
            return Err("--bounds needs at least one value".into());
        }
    }
    let out_dir = PathBuf::from(flag_value(args, "--out-dir").unwrap_or_else(|| ".".into()));
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;

    let baseline = latest_bench(&out_dir);
    let (id, out_path) = next_bench_path(&out_dir);
    if !opts.quiet {
        let simd = if szx_core::simd::available() {
            "/simd"
        } else {
            ""
        };
        eprintln!(
            "observatory: sweeping {} suites x {} bounds x scalar/kernel{simd} x serial/parallel",
            bench::observatory::SUITES.len(),
            opts.bounds.len()
        );
    }
    let mut report = bench::observatory::run(&opts);
    report.bench_id = id;
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| format!("{}: {e}", out_path.display()))?;
    println!("{} ({} records)", out_path.display(), report.records.len());

    match baseline {
        None => {
            eprintln!("gate: no prior BENCH_*.json — bootstrapped the trajectory");
            Ok(true)
        }
        Some((_, baseline_path)) => {
            let old = load_report(&baseline_path)?;
            let findings = compare(&old, &report, &compare_config(args)?);
            let passed = report_findings(&baseline_path, &findings)?;
            Ok(passed || has_flag(args, "--no-gate"))
        }
    }
}

fn cmd_compare(args: &[String]) -> Result<bool, String> {
    // Positionals = tokens that are neither flags nor the value of a
    // value-taking threshold flag.
    let mut paths = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = matches!(
                a.as_str(),
                "--max-tput-drop" | "--max-ratio-drop" | "--max-psnr-drop"
            );
            continue;
        }
        paths.push(a);
    }
    let [baseline_path, current_path] = paths[..] else {
        return Err("compare needs <baseline.json> <current.json>".into());
    };
    let baseline = load_report(Path::new(baseline_path))?;
    let current = load_report(Path::new(current_path))?;
    let findings = compare(&baseline, &current, &compare_config(args)?);
    report_findings(Path::new(baseline_path), &findings)
}

fn cmd_validate(args: &[String]) -> Result<bool, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("validate needs a file")?;
    let report = load_report(Path::new(path))?;
    println!(
        "{}: schema v{}, bench_id {}, {} records, scale {}, {} thread(s)",
        path,
        report.schema_version,
        report.bench_id,
        report.records.len(),
        report.scale,
        report.threads
    );
    Ok(true)
}
