//! Shared harness for the experiment binaries (one per paper table/figure;
//! see DESIGN.md §6 for the experiment index).

#![forbid(unsafe_code)]

pub mod observatory;

use std::time::Instant;

use szx_data::{Application, Scale};

/// Experiment scale, overridable with `SZX_SCALE=tiny|small|medium|large|full`
/// (default `small` = the paper's grids divided by 8 per axis).
pub fn scale_from_env() -> Scale {
    match std::env::var("SZX_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "tiny" => Scale::Tiny,
        "medium" => Scale::Medium,
        "large" => Scale::Large,
        "full" => Scale::Full,
        _ => Scale::Small,
    }
}

/// Deterministic per-application seed so every binary sees the same data.
pub fn seed_for(app: Application) -> u64 {
    0x5a5a_0000 + app.short_name().bytes().map(|b| b as u64).sum::<u64>()
}

/// Wall-time one closure invocation.
pub fn timeit<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed().as_secs_f64(), r)
}

/// Median wall time over `runs` invocations (one extra warmup run first).
pub fn median_time<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(runs > 0);
    let mut times = Vec::with_capacity(runs);
    let _ = f(); // warmup
    for _ in 0..runs {
        times.push(timeit(&mut f).0);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// MB/s (decimal) for `bytes` processed in `secs`.
pub fn mbs(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / secs / 1e6
}

/// GB/s (decimal).
pub fn gbs(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / secs / 1e9
}

/// Ensure the results directory exists and return the path of `name` in it.
pub fn results_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    dir.join(name)
}

/// The REL error bounds used across the paper's tables.
pub const REL_BOUNDS: [f64; 3] = [1e-2, 1e-3, 1e-4];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let (t, v) = timeit(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        let m = median_time(3, || std::hint::black_box(1 + 1));
        assert!(m >= 0.0);
        assert_eq!(mbs(2_000_000, 2.0), 1.0);
        assert_eq!(gbs(3_000_000_000, 1.0), 3.0);
    }

    #[test]
    fn seeds_are_distinct_per_app() {
        let mut seen = std::collections::HashSet::new();
        for app in Application::ALL {
            assert!(seen.insert(seed_for(app)), "{}", app.short_name());
        }
    }

    #[test]
    fn default_scale_is_small() {
        if std::env::var("SZX_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::Small);
        }
    }
}
