//! The benchmark observatory: a fixed grid of szx measurements with a
//! versioned, machine-readable trajectory (`BENCH_<n>.json`) and a
//! regression gate.
//!
//! Every run sweeps the synthetic suites (CESM, Nyx, Hurricane) across
//! relative error bounds × {scalar, kernel, simd} hot loops × {serial,
//! parallel} drivers (the simd column only on hosts whose CPU supports the
//! explicit ISA path — absent cells are growth headroom, never a baseline,
//! so the gate stays portable), and records throughput, compression ratio,
//! distortion (PSNR, max-error/bound), and a per-cell memcpy roofline so
//! throughput can be read relative to what a pure copy of the same bytes
//! achieves on the same machine. Reports accumulate as
//! `BENCH_0.json`, `BENCH_1.json`, … so the repository carries its own
//! performance history; [`compare`] diffs a run against its predecessor
//! and flags regressions under configurable thresholds.
//!
//! The JSON schema (documented in DESIGN.md §9) is versioned via
//! `schema_version` and forward-compatible: readers ignore unknown fields
//! and reject only documents claiming a *newer* schema than they know.

use std::path::{Path, PathBuf};
use std::time::Instant;

use szx_core::{KernelSelect, SzxConfig};
use szx_data::{Application, Scale};
use szx_telemetry::json::Json;

/// Bump when a field changes meaning or a required field is added. Readers
/// accept any document with `schema_version <= SCHEMA_VERSION`.
pub const SCHEMA_VERSION: u64 = 1;

/// Stand-in for infinite PSNR (lossless cells) so reports stay valid JSON.
pub const PSNR_CAP_DB: f64 = 999.0;

/// The suites a standard observatory run measures: the paper's smoothest
/// (CESM), roughest (Nyx), and mid-spectrum (Hurricane) applications.
pub const SUITES: [Application; 3] = [
    Application::CesmAtm,
    Application::Nyx,
    Application::Hurricane,
];

/// One measured cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Suite short name (`CESM`, `NYX`, `Hurricane`).
    pub suite: String,
    /// Relative error bound the cell ran at.
    pub rel_bound: f64,
    /// Hot-loop selection: `scalar`, `kernel`, or `simd`.
    pub kernel: String,
    /// Driver: `serial` or `parallel`.
    pub mode: String,
    /// Uncompressed bytes processed (all fields of the suite).
    pub raw_bytes: u64,
    /// Compression throughput, raw GB/s (best-of-samples per field).
    pub compress_gbps: f64,
    /// Decompression throughput, raw GB/s.
    pub decompress_gbps: f64,
    /// Overall compression ratio (raw / compressed across fields).
    pub ratio: f64,
    /// Worst per-field PSNR in dB (capped at [`PSNR_CAP_DB`]).
    pub psnr_db: f64,
    /// Worst per-field `max|error| / error_bound`; > 1 means the bound was
    /// violated — always a regression regardless of thresholds.
    pub max_err_over_bound: f64,
    /// Memcpy roofline for this cell's bytes, raw GB/s: the best-of-samples
    /// speed of a plain `copy_from_slice` over the same fields, measured
    /// outside every timed region. Context for reading `compress_gbps` /
    /// `decompress_gbps` as a fraction of memory bandwidth (schema-additive
    /// in v1: absent in older documents parses as 0.0, and [`compare`]
    /// never gates on it — the roofline describes the machine, not szx).
    pub roofline_gbps: f64,
    /// Top zones by self samples from an untimed profiled pass over the
    /// cell (schema-additive in v1: absent in older documents parses as
    /// empty, and [`compare`] never gates on it — attribution is context,
    /// not a metric).
    pub hotspots: Vec<szx_profile::Hotspot>,
}

impl BenchRecord {
    /// Stable identity of the grid cell across runs.
    pub fn key(&self) -> String {
        format!(
            "{}/rel{:e}/{}/{}",
            self.suite, self.rel_bound, self.kernel, self.mode
        )
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite".into(), Json::Str(self.suite.clone())),
            ("rel_bound".into(), Json::Num(self.rel_bound)),
            ("kernel".into(), Json::Str(self.kernel.clone())),
            ("mode".into(), Json::Str(self.mode.clone())),
            ("raw_bytes".into(), Json::Num(self.raw_bytes as f64)),
            ("compress_gbps".into(), Json::Num(self.compress_gbps)),
            ("decompress_gbps".into(), Json::Num(self.decompress_gbps)),
            ("ratio".into(), Json::Num(self.ratio)),
            ("psnr_db".into(), Json::Num(self.psnr_db)),
            (
                "max_err_over_bound".into(),
                Json::Num(self.max_err_over_bound),
            ),
            ("roofline_gbps".into(), Json::Num(self.roofline_gbps)),
            (
                "hotspots".into(),
                Json::Arr(
                    self.hotspots
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("zone".into(), Json::Str(h.name.clone())),
                                ("self_samples".into(), Json::Num(h.self_samples as f64)),
                                ("total_samples".into(), Json::Num(h.total_samples as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<BenchRecord, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing string field {k:?}"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record missing numeric field {k:?}"))
        };
        // Schema-additive (absent in pre-profiler documents → empty); a
        // present-but-malformed entry is still an error, not silence.
        let hotspots = match v.get("hotspots").and_then(Json::as_arr) {
            None => Vec::new(),
            Some(items) => items
                .iter()
                .map(|h| {
                    Ok(szx_profile::Hotspot {
                        name: h
                            .get("zone")
                            .and_then(Json::as_str)
                            .ok_or("hotspot missing zone name")?
                            .to_string(),
                        self_samples: h
                            .get("self_samples")
                            .and_then(Json::as_f64)
                            .ok_or("hotspot missing self_samples")?
                            as u64,
                        total_samples: h
                            .get("total_samples")
                            .and_then(Json::as_f64)
                            .ok_or("hotspot missing total_samples")?
                            as u64,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
        Ok(BenchRecord {
            suite: str_field("suite")?,
            rel_bound: num_field("rel_bound")?,
            kernel: str_field("kernel")?,
            mode: str_field("mode")?,
            raw_bytes: num_field("raw_bytes")? as u64,
            compress_gbps: num_field("compress_gbps")?,
            decompress_gbps: num_field("decompress_gbps")?,
            ratio: num_field("ratio")?,
            psnr_db: num_field("psnr_db")?,
            max_err_over_bound: num_field("max_err_over_bound")?,
            // Schema-additive: pre-roofline documents carry no such field;
            // 0.0 reads as "unmeasured" and is never compared against.
            roofline_gbps: v.get("roofline_gbps").and_then(Json::as_f64).unwrap_or(0.0),
            hotspots,
        })
    }
}

/// One observatory run: context plus every measured cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub schema_version: u64,
    /// The `<n>` of the `BENCH_<n>.json` this report was written as.
    pub bench_id: u64,
    /// Seconds since the Unix epoch at measurement time.
    pub created_unix: u64,
    /// Dataset scale the suites were generated at.
    pub scale: String,
    /// Worker threads available to the parallel cells.
    pub threads: u64,
    /// Timing samples per cell (best is kept).
    pub samples: u64,
    /// Fields measured per suite (caps suite size).
    pub fields_per_suite: u64,
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    pub fn to_json(&self) -> String {
        let context = Json::Obj(vec![
            ("scale".into(), Json::Str(self.scale.clone())),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("samples".into(), Json::Num(self.samples as f64)),
            (
                "fields_per_suite".into(),
                Json::Num(self.fields_per_suite as f64),
            ),
        ]);
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("bench_id".into(), Json::Num(self.bench_id as f64)),
            ("created_unix".into(), Json::Num(self.created_unix as f64)),
            ("context".into(), context),
            (
                "records".into(),
                Json::Arr(self.records.iter().map(BenchRecord::to_json).collect()),
            ),
        ])
        .render()
    }

    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = Json::parse(text)?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u64;
        if version > SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} is newer than this reader ({SCHEMA_VERSION})"
            ));
        }
        let num = |j: &Json, k: &str| -> Result<u64, String> {
            j.get(k)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing numeric field {k:?}"))
        };
        let ctx = v.get("context").ok_or("missing context")?;
        let records = v
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("missing records array")?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version: version,
            bench_id: num(&v, "bench_id")?,
            created_unix: num(&v, "created_unix")?,
            scale: ctx
                .get("scale")
                .and_then(Json::as_str)
                .ok_or("missing context.scale")?
                .to_string(),
            threads: num(ctx, "threads")?,
            samples: num(ctx, "samples")?,
            fields_per_suite: num(ctx, "fields_per_suite")?,
            records,
        })
    }
}

/// Map a CLI run manifest (`szx … --manifest run.json`, schema v1 from
/// `szx_telemetry::Manifest`) onto a one-record [`BenchReport`] so the
/// comparator can diff ad-hoc CLI runs against observatory sweeps (or each
/// other). Metrics a manifest doesn't carry come out as harmless neutrals:
/// absent throughputs are 0.0 (never above any baseline floor), absent
/// PSNR is [`PSNR_CAP_DB`], absent distortion means `max_err_over_bound`
/// 0.0.
pub fn report_from_manifest(text: &str) -> Result<BenchReport, String> {
    let v = szx_telemetry::Manifest::parse(text)?;
    let qual = |k: &str| {
        v.get("quality")
            .and_then(|q| q.get(k))
            .and_then(Json::as_f64)
    };
    let cfg = v.get("config").ok_or("manifest missing config")?;
    let cfg_str = |k: &str| {
        cfg.get(k)
            .and_then(Json::as_str)
            .map(str::to_lowercase)
            .ok_or_else(|| format!("manifest config missing {k:?}"))
    };
    let dataset = v.get("dataset").ok_or("manifest missing dataset")?;
    let suite = dataset
        .get("path")
        .and_then(Json::as_str)
        .map(|p| {
            Path::new(p)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.to_string())
        })
        .ok_or("manifest dataset missing path")?;
    let bound = cfg
        .get("bound")
        .and_then(Json::as_f64)
        .ok_or("manifest config missing bound")?;
    let max_err_over_bound = match qual("max_abs_err") {
        Some(e) if bound > 0.0 => e / bound,
        _ => 0.0,
    };
    let record = BenchRecord {
        suite,
        rel_bound: bound,
        kernel: cfg_str("kernel")?,
        mode: cfg_str("mode")?,
        raw_bytes: dataset.get("bytes").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        compress_gbps: qual("compress_gbps").unwrap_or(0.0),
        decompress_gbps: qual("decompress_gbps").unwrap_or(0.0),
        ratio: qual("ratio").unwrap_or(0.0),
        psnr_db: qual("psnr_db").unwrap_or(PSNR_CAP_DB).min(PSNR_CAP_DB),
        max_err_over_bound,
        roofline_gbps: 0.0,
        hotspots: Vec::new(),
    };
    Ok(BenchReport {
        schema_version: SCHEMA_VERSION,
        bench_id: 0,
        created_unix: v
            .get("created_unix_ms")
            .and_then(Json::as_f64)
            .map(|ms| (ms / 1e3) as u64)
            .unwrap_or(0),
        scale: "manifest".to_string(),
        threads: cfg.get("threads").and_then(Json::as_f64).unwrap_or(1.0) as u64,
        samples: 1,
        fields_per_suite: 1,
        records: vec![record],
    })
}

/// Load either document the observatory understands: a `BENCH_<n>.json`
/// trajectory report or a CLI run manifest, telling them apart by the
/// manifest's `kind` tag.
pub fn load_any(text: &str) -> Result<BenchReport, String> {
    let is_manifest = Json::parse(text)
        .ok()
        .and_then(|v| v.get("kind").and_then(Json::as_str).map(str::to_string))
        .is_some_and(|k| k == szx_telemetry::MANIFEST_KIND);
    if is_manifest {
        report_from_manifest(text)
    } else {
        BenchReport::from_json(text)
    }
}

/// Regression thresholds. Ratio and PSNR carry tiny tolerances (they are
/// deterministic given the data; the slack only absorbs float formatting),
/// while throughput — a wall-clock measurement — gets a real noise budget.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Max fractional throughput drop (0.05 = fail below 95% of baseline).
    pub max_throughput_drop: f64,
    /// Max fractional compression-ratio drop.
    pub max_ratio_drop: f64,
    /// Max absolute PSNR drop in dB.
    pub max_psnr_drop_db: f64,
    /// Gate on throughput at all (disable when comparing across machines).
    pub check_throughput: bool,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            max_throughput_drop: 0.05,
            max_ratio_drop: 1e-3,
            max_psnr_drop_db: 0.05,
            check_throughput: true,
        }
    }
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub key: String,
    pub metric: &'static str,
    pub baseline: f64,
    pub current: f64,
    /// The worst value the thresholds would still have accepted.
    pub allowed: f64,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed {:.4} -> {:.4} (allowed >= {:.4})",
            self.key, self.metric, self.baseline, self.current, self.allowed
        )
    }
}

/// Diff `current` against `baseline`. Every baseline cell must still exist
/// (a vanished cell is a coverage regression) and stay within thresholds;
/// cells only present in `current` are growth, not failures. An error-bound
/// violation (`max_err_over_bound > 1`) fails unconditionally.
pub fn compare(baseline: &BenchReport, current: &BenchReport, cfg: &CompareConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for old in &baseline.records {
        let key = old.key();
        let Some(new) = current.records.iter().find(|r| r.key() == key) else {
            findings.push(Finding {
                key,
                metric: "coverage (cell missing from current run)",
                baseline: 1.0,
                current: 0.0,
                allowed: 1.0,
            });
            continue;
        };
        if cfg.check_throughput {
            for (metric, b, c) in [
                ("compress_gbps", old.compress_gbps, new.compress_gbps),
                ("decompress_gbps", old.decompress_gbps, new.decompress_gbps),
            ] {
                let floor = b * (1.0 - cfg.max_throughput_drop);
                if c < floor {
                    findings.push(Finding {
                        key: key.clone(),
                        metric,
                        baseline: b,
                        current: c,
                        allowed: floor,
                    });
                }
            }
        }
        let ratio_floor = old.ratio * (1.0 - cfg.max_ratio_drop);
        if new.ratio < ratio_floor {
            findings.push(Finding {
                key: key.clone(),
                metric: "ratio",
                baseline: old.ratio,
                current: new.ratio,
                allowed: ratio_floor,
            });
        }
        let psnr_floor = old.psnr_db - cfg.max_psnr_drop_db;
        if new.psnr_db < psnr_floor {
            findings.push(Finding {
                key: key.clone(),
                metric: "psnr_db",
                baseline: old.psnr_db,
                current: new.psnr_db,
                allowed: psnr_floor,
            });
        }
        if new.max_err_over_bound > 1.0 {
            findings.push(Finding {
                key: key.clone(),
                metric: "max_err_over_bound (error bound violated)",
                baseline: old.max_err_over_bound,
                current: new.max_err_over_bound,
                allowed: 1.0,
            });
        }
    }
    findings
}

/// Parse `BENCH_<n>.json` file names.
fn bench_id_of(name: &str) -> Option<u64> {
    name.strip_prefix("BENCH_")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// The highest-numbered `BENCH_<n>.json` in `dir`, if any.
pub fn latest_bench(dir: &Path) -> Option<(u64, PathBuf)> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        if let Some(id) = name.to_str().and_then(bench_id_of) {
            if best.as_ref().is_none_or(|(b, _)| id > *b) {
                best = Some((id, entry.path()));
            }
        }
    }
    best
}

/// The id and path the next report in `dir` should be written as
/// (`BENCH_0.json` when the directory has none — the bootstrap case).
pub fn next_bench_path(dir: &Path) -> (u64, PathBuf) {
    let id = latest_bench(dir).map_or(0, |(n, _)| n + 1);
    (id, dir.join(format!("BENCH_{id}.json")))
}

/// Knobs of one observatory run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    pub scale: Scale,
    /// Timing samples per cell; the fastest is recorded.
    pub samples: usize,
    /// Cap on fields generated per suite.
    pub max_fields: usize,
    /// Relative error bounds to sweep.
    pub bounds: Vec<f64>,
    /// Suppress per-cell progress on stderr.
    pub quiet: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: Scale::Small,
            samples: 3,
            max_fields: 2,
            bounds: vec![1e-2, 1e-3, 1e-4],
            quiet: false,
        }
    }
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
        Scale::Full => "full",
    }
}

/// Hotspots recorded per cell.
const HOTSPOT_TOP_N: usize = 10;
/// Sampling rate for the hotspot pass: well above the 997 Hz default so
/// even a tiny-scale cell (microseconds of work per iteration) accumulates
/// enough ticks over [`HOTSPOT_MIN_SECS`] to attribute something.
const HOTSPOT_HZ: u32 = 4_000;
/// Minimum wall time the profiled pass loops the cell's workload for.
const HOTSPOT_MIN_SECS: f64 = 0.05;

/// One *untimed* profiled pass over the cell's workload: start the zone
/// sampler, loop compress+decompress until enough wall time has elapsed to
/// accumulate samples, and keep the top zones by self time. Runs strictly
/// outside the timed regions, so attribution costs the throughput numbers
/// nothing.
fn collect_hotspots(
    dataset: &szx_data::Dataset,
    cfg: &SzxConfig,
    kernel: KernelSelect,
    mode: &str,
) -> Vec<szx_profile::Hotspot> {
    let profiler = szx_profile::Profiler::start(HOTSPOT_HZ);
    let start = Instant::now();
    let mut scratch = szx_core::DecodeScratch::default();
    loop {
        for field in &dataset.fields {
            let data = &field.data;
            let stream = if mode == "parallel" {
                szx_core::parallel::compress(data, cfg)
            } else {
                szx_core::compress(data, cfg)
            }
            .expect("hotspot-pass compression failed");
            let mut recon = vec![0f32; data.len()];
            if mode == "parallel" {
                szx_core::parallel::decompress_into_with(&stream, &mut recon, kernel)
            } else {
                szx_core::decompress_into_scratch(&stream, &mut recon, kernel, &mut scratch)
            }
            .expect("hotspot-pass decompression failed");
        }
        if start.elapsed().as_secs_f64() >= HOTSPOT_MIN_SECS {
            break;
        }
    }
    profiler.stop().hotspots(HOTSPOT_TOP_N)
}

/// Fastest wall time of `samples` invocations, in seconds.
fn best_time<R>(samples: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.unwrap())
}

/// Measure the full grid. Deterministic data (fixed per-suite seeds), so
/// ratio/PSNR cells are exactly reproducible; throughput depends on the
/// machine.
pub fn run(opts: &RunOptions) -> BenchReport {
    let mut records = Vec::new();
    // The simd column exists only where the explicit ISA path can run (and
    // `SZX_DISABLE_SIMD` is unset): the grid grows on capable hosts and the
    // gate treats current-only cells as growth, so BENCH history stays
    // comparable across machines.
    let mut kernels = vec![
        ("scalar", KernelSelect::Scalar),
        ("kernel", KernelSelect::Kernel),
    ];
    if szx_core::simd::available() {
        kernels.push(("simd", KernelSelect::Simd));
    }
    for app in SUITES {
        let dataset = app.generate_limited(opts.scale, crate::seed_for(app), opts.max_fields);
        for &rel in &opts.bounds {
            for &(kernel_name, kernel) in &kernels {
                for mode in ["serial", "parallel"] {
                    let cfg = SzxConfig::relative(rel).with_kernel(kernel);
                    let mut raw_bytes = 0u64;
                    let mut comp_bytes = 0u64;
                    let mut compress_secs = 0.0;
                    let mut decompress_secs = 0.0;
                    let mut worst_psnr = f64::INFINITY;
                    let mut worst_err_over_bound = 0.0f64;
                    for field in &dataset.fields {
                        let data = &field.data;
                        let (ct, stream) = best_time(opts.samples, || {
                            if mode == "parallel" {
                                szx_core::parallel::compress(data, &cfg)
                            } else {
                                szx_core::compress(data, &cfg)
                            }
                            .expect("observatory compression failed")
                        });
                        // Preallocated output + reusable kernel arenas:
                        // the timed region is pure decode, not allocation.
                        let mut recon = vec![0f32; data.len()];
                        let mut scratch = szx_core::DecodeScratch::default();
                        let (dt, ()) = best_time(opts.samples, || {
                            if mode == "parallel" {
                                szx_core::parallel::decompress_into_with(
                                    &stream, &mut recon, kernel,
                                )
                            } else {
                                szx_core::decompress_into_scratch(
                                    &stream,
                                    &mut recon,
                                    kernel,
                                    &mut scratch,
                                )
                            }
                            .expect("observatory decompression failed")
                        });
                        let header = szx_core::inspect(&stream).expect("own stream inspects");
                        let d = szx_metrics::distortion(data, &recon);
                        raw_bytes += (data.len() * 4) as u64;
                        comp_bytes += stream.len() as u64;
                        compress_secs += ct;
                        decompress_secs += dt;
                        worst_psnr = worst_psnr.min(d.psnr);
                        if header.eb > 0.0 {
                            worst_err_over_bound =
                                worst_err_over_bound.max(d.max_abs_error / header.eb);
                        }
                    }
                    // Memcpy roofline over the same bytes, measured after
                    // the timed loops so it costs the throughput numbers
                    // nothing: the best-of-samples speed of a plain copy is
                    // the bandwidth ceiling the compressor's GB/s should be
                    // read against.
                    let mut roofline_secs = 0.0;
                    for field in &dataset.fields {
                        let mut sink = vec![0f32; field.data.len()];
                        let (t, ()) = best_time(opts.samples, || {
                            sink.copy_from_slice(&field.data);
                            std::hint::black_box(&mut sink);
                        });
                        roofline_secs += t;
                    }
                    // Attribution pass *after* the timed loops: the sampler
                    // never runs while throughput is being measured.
                    let hotspots = collect_hotspots(&dataset, &cfg, kernel, mode);
                    let record = BenchRecord {
                        suite: app.short_name().to_string(),
                        rel_bound: rel,
                        kernel: kernel_name.to_string(),
                        mode: mode.to_string(),
                        raw_bytes,
                        compress_gbps: raw_bytes as f64 / compress_secs.max(1e-12) / 1e9,
                        decompress_gbps: raw_bytes as f64 / decompress_secs.max(1e-12) / 1e9,
                        ratio: raw_bytes as f64 / comp_bytes.max(1) as f64,
                        psnr_db: worst_psnr.min(PSNR_CAP_DB),
                        max_err_over_bound: worst_err_over_bound,
                        roofline_gbps: raw_bytes as f64 / roofline_secs.max(1e-12) / 1e9,
                        hotspots,
                    };
                    if !opts.quiet {
                        eprintln!(
                            "  {:<28} {:>7.3} GB/s c / {:>7.3} GB/s d   CR {:>7.2}  PSNR {:>7.2} dB",
                            record.key(),
                            record.compress_gbps,
                            record.decompress_gbps,
                            record.ratio,
                            record.psnr_db
                        );
                    }
                    records.push(record);
                }
            }
        }
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        bench_id: 0,
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        scale: scale_name(opts.scale).to_string(),
        threads: rayon::current_num_threads() as u64,
        samples: opts.samples as u64,
        fields_per_suite: opts.max_fields as u64,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            bench_id: 3,
            created_unix: 1_754_500_000,
            scale: "tiny".into(),
            threads: 4,
            samples: 1,
            fields_per_suite: 1,
            records: vec![BenchRecord {
                suite: "CESM".into(),
                rel_bound: 1e-3,
                kernel: "kernel".into(),
                mode: "parallel".into(),
                raw_bytes: 1 << 20,
                compress_gbps: 2.5,
                decompress_gbps: 4.0,
                ratio: 6.25,
                psnr_db: 64.5,
                max_err_over_bound: 0.93,
                roofline_gbps: 11.5,
                hotspots: vec![
                    szx_profile::Hotspot {
                        name: "compress.encode_blocks".into(),
                        self_samples: 120,
                        total_samples: 130,
                    },
                    szx_profile::Hotspot {
                        name: "compress.range_scan".into(),
                        self_samples: 45,
                        total_samples: 45,
                    },
                ],
            }],
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let r = sample_report();
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn newer_schema_is_rejected_older_accepted() {
        let mut r = sample_report();
        r.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::from_json(&r.to_json()).unwrap_err();
        assert!(err.contains("newer"), "{err}");
        // Unknown fields from the future are ignored, not fatal.
        let doc = sample_report()
            .to_json()
            .replacen("{", "{\"from_the_future\":[1,2],", 1);
        assert!(BenchReport::from_json(&doc).is_ok());
    }

    #[test]
    fn hotspots_are_schema_additive() {
        // Pre-profiler documents carry no "hotspots" key — they must parse
        // with an empty attribution table, not an error.
        let mut r = sample_report();
        let without = r
            .to_json()
            .split(",\"hotspots\"")
            .next()
            .unwrap()
            .to_string()
            + "}]}";
        let parsed = BenchReport::from_json(&without).unwrap();
        assert!(parsed.records[0].hotspots.is_empty());
        // A present-but-malformed hotspot entry is an error, not silence.
        let broken = r.to_json().replace("\"zone\"", "\"zome\"");
        assert!(BenchReport::from_json(&broken).is_err());
        // The comparator never gates on attribution: dropping every
        // hotspot between runs is not a regression.
        let base = r.clone();
        r.records[0].hotspots.clear();
        assert!(compare(&base, &r, &CompareConfig::default()).is_empty());
    }

    #[test]
    fn roofline_is_schema_additive_and_never_gated() {
        // Pre-roofline documents carry no "roofline_gbps" key — they must
        // parse as 0.0 ("unmeasured"), not error.
        let r = sample_report();
        let without = r.to_json().replace(",\"roofline_gbps\":11.5", "");
        assert_ne!(without, r.to_json(), "field must exist to be stripped");
        let parsed = BenchReport::from_json(&without).unwrap();
        assert_eq!(parsed.records[0].roofline_gbps, 0.0);
        // The comparator never gates on the roofline: it describes the
        // machine, so collapsing it between runs is not a regression.
        let mut cur = r.clone();
        cur.records[0].roofline_gbps = 0.0;
        assert!(compare(&r, &cur, &CompareConfig::default()).is_empty());
    }

    fn sample_manifest() -> String {
        let mut m = szx_telemetry::Manifest::new("compress");
        m.set_config(&[
            ("bound_mode", szx_telemetry::Value::Str("abs".into())),
            ("bound", szx_telemetry::Value::F64(1e-3)),
            ("kernel", szx_telemetry::Value::Str("Auto".into())),
            ("mode", szx_telemetry::Value::Str("serial".into())),
            ("threads", szx_telemetry::Value::U64(1)),
        ]);
        m.set_dataset("suites/CLDHGH.f32", 100800, 0xab8e_4ce8_11d6_b0a2);
        m.set_quality(&[
            ("ratio", szx_telemetry::Value::F64(3.57)),
            ("psnr_db", szx_telemetry::Value::F64(79.1)),
            ("max_abs_err", szx_telemetry::Value::F64(4.9e-4)),
            ("compress_gbps", szx_telemetry::Value::F64(2.2)),
        ]);
        m.render()
    }

    #[test]
    fn manifest_maps_to_one_record_report() {
        let r = report_from_manifest(&sample_manifest()).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.scale, "manifest");
        let rec = &r.records[0];
        assert_eq!(rec.suite, "CLDHGH.f32");
        assert_eq!(rec.kernel, "auto");
        assert_eq!(rec.mode, "serial");
        assert_eq!(rec.raw_bytes, 100800);
        assert!((rec.compress_gbps - 2.2).abs() < 1e-12);
        // No decompress measurement in a compress manifest — neutral 0.0
        // so a throughput floor of `0.95 * 0.0` can never fire.
        assert_eq!(rec.decompress_gbps, 0.0);
        assert!((rec.max_err_over_bound - 0.49).abs() < 1e-9);
    }

    #[test]
    fn manifests_compare_against_each_other() {
        let base = report_from_manifest(&sample_manifest()).unwrap();
        let mut cur = base.clone();
        assert!(compare(&base, &cur, &CompareConfig::default()).is_empty());
        cur.records[0].ratio *= 0.5;
        let findings = compare(&base, &cur, &CompareConfig::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "ratio");
    }

    #[test]
    fn load_any_distinguishes_reports_from_manifests() {
        assert_eq!(
            load_any(&sample_report().to_json()).unwrap(),
            sample_report()
        );
        assert_eq!(load_any(&sample_manifest()).unwrap().scale, "manifest");
        assert!(load_any("{}").is_err());
    }

    #[test]
    fn bench_file_names_parse() {
        assert_eq!(bench_id_of("BENCH_0.json"), Some(0));
        assert_eq!(bench_id_of("BENCH_17.json"), Some(17));
        assert_eq!(bench_id_of("BENCH_.json"), None);
        assert_eq!(bench_id_of("bench_1.json"), None);
        assert_eq!(bench_id_of("BENCH_1.json.bak"), None);
    }
}
