//! §5.1 ablation: the three ways of committing necessary mantissa bits.
//! Solution C (byte-aligned right shift, the paper's contribution) must
//! beat Solution A (bit packing) and Solution B (bytes + residual bits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use szx_core::{CommitStrategy, SzxConfig};
use szx_data::{Application, Scale};

fn bench_strategies(c: &mut Criterion) {
    let ds = Application::Miranda.generate(Scale::Small, 42);
    let f = ds.field("velocity-x").unwrap();
    // A tight bound keeps most blocks non-constant so the commit path
    // dominates the runtime.
    let eb = 1e-5 * f.value_range();
    let bytes = f.data.len() * 4;

    let mut g = c.benchmark_group("commit-strategy-compress");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(20);
    for (name, strategy) in [
        ("A-bitpack", CommitStrategy::BitPack),
        ("B-bytes+residual", CommitStrategy::BytePlusResidual),
        ("C-byte-aligned", CommitStrategy::ByteAligned),
    ] {
        let cfg = SzxConfig::absolute(eb).with_strategy(strategy);
        g.bench_function(BenchmarkId::new(name, "miranda-vx"), |b| {
            b.iter(|| szx_core::compress(&f.data, &cfg).unwrap());
        });
    }
    g.finish();

    let mut g = c.benchmark_group("commit-strategy-decompress");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(20);
    for (name, strategy) in [
        ("A-bitpack", CommitStrategy::BitPack),
        ("B-bytes+residual", CommitStrategy::BytePlusResidual),
        ("C-byte-aligned", CommitStrategy::ByteAligned),
    ] {
        let cfg = SzxConfig::absolute(eb).with_strategy(strategy);
        let stream = szx_core::compress(&f.data, &cfg).unwrap();
        let mut out = vec![0f32; f.data.len()];
        g.bench_function(BenchmarkId::new(name, "miranda-vx"), |b| {
            b.iter(|| szx_core::decompress_into(&stream, &mut out).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
