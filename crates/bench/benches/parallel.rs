//! Criterion microbenchmarks behind Tables 6–7: multicore SZx (rayon,
//! mirroring omp-SZx) vs the chunk-parallel baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use szx_baselines::chunked::{self, Codec};
use szx_core::SzxConfig;
use szx_data::{Application, Scale};

fn field() -> (Vec<f32>, [usize; 3], f64) {
    let ds = Application::Nyx.generate(Scale::Medium, 42);
    let f = ds.field("velocity-x").unwrap();
    let eb = 1e-3 * f.value_range();
    (f.data.clone(), f.dims, eb)
}

fn bench_parallel(c: &mut Criterion) {
    let (data, dims, eb) = field();
    let bytes = data.len() * 4;
    let threads = rayon::current_num_threads();
    let mut g = c.benchmark_group("parallel");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(15);

    let cfg = SzxConfig::absolute(eb);
    g.bench_function(BenchmarkId::new("szx-compress", "nyx-vx"), |b| {
        b.iter(|| szx_core::parallel::compress(&data, &cfg).unwrap());
    });
    let stream = szx_core::parallel::compress(&data, &cfg).unwrap();
    let mut out = vec![0f32; data.len()];
    g.bench_function(BenchmarkId::new("szx-decompress", "nyx-vx"), |b| {
        b.iter(|| szx_core::parallel::decompress_into(&stream, &mut out).unwrap());
    });
    g.bench_function(BenchmarkId::new("szlike-compress", "nyx-vx"), |b| {
        b.iter(|| chunked::compress_par(&data, dims, eb, Codec::SzLike, threads).unwrap());
    });
    g.bench_function(BenchmarkId::new("zfplike-compress", "nyx-vx"), |b| {
        b.iter(|| chunked::compress_par(&data, dims, eb, Codec::ZfpLike, threads).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
