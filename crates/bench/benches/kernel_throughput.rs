//! Tentpole acceptance bench: the branch-free kernel path
//! (`KernelSelect::Kernel`) vs. the scalar reference path
//! (`KernelSelect::Scalar`) — plus, on capable hosts, the explicit SIMD
//! path (`KernelSelect::Simd`) — on 64 MB f32 inputs drawn from the
//! CESM-ATM and Nyx generators. All paths produce byte-identical archives
//! (asserted at setup), so any delta is pure hot-loop throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use szx_core::config::KernelSelect;
use szx_core::SzxConfig;
use szx_data::{Application, Scale};

/// 64 MB of f32 (16 Mi elements), stitched from the application's fields.
const TARGET_ELEMS: usize = 16 * 1024 * 1024;

fn dataset_64mb(app: Application) -> Vec<f32> {
    let ds = app.generate_limited(Scale::Large, 7, 16);
    let mut data = Vec::with_capacity(TARGET_ELEMS);
    'outer: loop {
        for f in &ds.fields {
            let room = TARGET_ELEMS - data.len();
            if room == 0 {
                break 'outer;
            }
            data.extend_from_slice(&f.data[..f.data.len().min(room)]);
        }
    }
    data
}

fn bench_kernels(c: &mut Criterion) {
    for (name, app) in [("cesm", Application::CesmAtm), ("nyx", Application::Nyx)] {
        let data = dataset_64mb(app);
        let bytes = (data.len() * 4) as u64;

        // The acceptance criterion only counts if both paths agree.
        let cfg = SzxConfig::relative(1e-3);
        let scalar = szx_core::compress(&data, &cfg.with_kernel(KernelSelect::Scalar)).unwrap();
        let kernel = szx_core::compress(&data, &cfg.with_kernel(KernelSelect::Kernel)).unwrap();
        assert_eq!(scalar, kernel, "{name}: paths must be byte-identical");
        let mut arms = vec![
            ("scalar", KernelSelect::Scalar),
            ("kernel", KernelSelect::Kernel),
        ];
        if szx_core::simd::available() {
            let simd = szx_core::compress(&data, &cfg.with_kernel(KernelSelect::Simd)).unwrap();
            assert_eq!(scalar, simd, "{name}: simd path must be byte-identical");
            arms.push(("simd", KernelSelect::Simd));
        }
        drop((scalar, kernel));

        let mut g = c.benchmark_group("kernel-throughput-compress");
        g.throughput(Throughput::Bytes(bytes));
        g.sample_size(10);
        for &(kname, sel) in &arms {
            let cfg = cfg.with_kernel(sel);
            g.bench_function(BenchmarkId::new(kname, name), |b| {
                b.iter(|| szx_core::compress(&data, &cfg).unwrap());
            });
        }
        g.finish();

        // Where the time goes: the two kernels in isolation.
        let mut g = c.benchmark_group("kernel-primitives");
        g.throughput(Throughput::Bytes(bytes));
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("minmax-scalar", name), |b| {
            b.iter(|| {
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for &d in &data {
                    if d < lo {
                        lo = d;
                    }
                    if d > hi {
                        hi = d;
                    }
                }
                (lo, hi)
            });
        });
        g.bench_function(BenchmarkId::new("minmax-kernel", name), |b| {
            b.iter(|| szx_core::kernels::minmax(&data));
        });
        if szx_core::simd::available() {
            g.bench_function(BenchmarkId::new("minmax-simd", name), |b| {
                b.iter(|| szx_core::simd::minmax(&data));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
