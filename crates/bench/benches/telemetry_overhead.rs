//! Cost of the observability layer: compression throughput with telemetry
//! disabled (the default — every instrument site is behind one relaxed
//! atomic load) versus enabled (chunk-local accumulation, flushed once per
//! pass at the assemble join point), with the flight recorder on top
//! (per-thread lock-free event buffers), and with the zone-stack sampling
//! profiler running at its default ~997 Hz. The acceptance bar is <2%
//! overhead for every enabled arm on a ≥64 MB field; with everything
//! merely *compiled in* but off (the shipped default), the cost is the
//! same one relaxed load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use szx_core::SzxConfig;

/// 16 Mi f32 = 64 MB, a synthetic field with the usual mix of smooth
/// (constant-block) stretches and oscillatory (non-constant) ones.
fn field() -> Vec<f32> {
    let n = 16 * 1024 * 1024;
    (0..n)
        .map(|i| {
            let x = i as f32 * 1.9e-4;
            // Slowly-varying envelope gates a fast carrier: long plateaus
            // where the envelope is tiny, busy blocks where it is not.
            let envelope = (x * 0.11).sin().max(0.0);
            envelope * (x * 37.0).sin() * 12.5
        })
        .collect()
}

fn bench_overhead(c: &mut Criterion) {
    let data = field();
    let bytes = data.len() * 4;
    let cfg = SzxConfig::relative(1e-3);

    let mut g = c.benchmark_group("telemetry-overhead");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(10);
    for (label, telemetry, trace) in [
        ("disabled", false, false),
        ("enabled", true, false),
        ("enabled-plus-trace", true, true),
    ] {
        g.bench_function(BenchmarkId::new("compress-64MB", label), |b| {
            szx_telemetry::set_enabled(telemetry);
            szx_telemetry::set_trace_enabled(trace);
            b.iter(|| szx_core::compress(&data, &cfg).unwrap());
        });
    }
    // The full `--metrics` path: instrumented compression plus a registry
    // snapshot rendered to Prometheus text every iteration. Real runs
    // export once at exit, so this is a generous upper bound on what the
    // exposition layer can ever add.
    g.bench_function(
        BenchmarkId::new("compress-64MB", "enabled-plus-export"),
        |b| {
            szx_telemetry::set_enabled(true);
            szx_telemetry::set_trace_enabled(false);
            b.iter(|| {
                let stream = szx_core::compress(&data, &cfg).unwrap();
                let text = szx_telemetry::render_prometheus(&szx_telemetry::global().snapshot());
                (stream, text)
            });
        },
    );
    // The profiler arm: zone publication on (a few atomic stores per
    // trace_zone push/pop at chunk granularity) plus the sampler thread
    // interrupting at the default rate. The workload threads never block
    // on the sampler — it only reads their seqlock slots — so the cost is
    // the publication stores plus cache-line ping-pong on sampled slots.
    g.bench_function(
        BenchmarkId::new("compress-64MB", "enabled-plus-sampler"),
        |b| {
            szx_telemetry::set_enabled(true);
            szx_telemetry::set_trace_enabled(false);
            let profiler = szx_profile::Profiler::start(szx_profile::default_hz());
            b.iter(|| szx_core::compress(&data, &cfg).unwrap());
            profiler.stop();
        },
    );
    szx_telemetry::set_enabled(false);
    szx_telemetry::set_trace_enabled(false);
    let _ = szx_telemetry::take_trace(); // free the recorded events
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
