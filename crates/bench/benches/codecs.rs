//! Criterion microbenchmarks behind Tables 4–5: serial compression and
//! decompression throughput of SZx vs the SZ-like / ZFP-like / LZ-like
//! baselines on one Miranda field.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use szx_core::SzxConfig;
use szx_data::{Application, Scale};

fn field() -> (Vec<f32>, [usize; 3], f64) {
    let ds = Application::Miranda.generate(Scale::Small, 42);
    let f = ds.field("pressure").unwrap();
    let eb = 1e-3 * f.value_range();
    (f.data.clone(), f.dims, eb)
}

fn bench_compress(c: &mut Criterion) {
    let (data, dims, eb) = field();
    let bytes = data.len() * 4;
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(20);
    g.bench_function(BenchmarkId::new("szx", "miranda-pressure"), |b| {
        let cfg = SzxConfig::absolute(eb);
        b.iter(|| szx_core::compress(&data, &cfg).unwrap());
    });
    g.bench_function(BenchmarkId::new("szlike", "miranda-pressure"), |b| {
        b.iter(|| szx_baselines::szlike::compress(&data, dims, eb).unwrap());
    });
    g.bench_function(BenchmarkId::new("zfplike", "miranda-pressure"), |b| {
        b.iter(|| szx_baselines::zfplike::compress(&data, dims, eb).unwrap());
    });
    g.bench_function(BenchmarkId::new("lzlike", "miranda-pressure"), |b| {
        b.iter(|| szx_baselines::lzlike::compress_f32(&data).unwrap());
    });
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let (data, dims, eb) = field();
    let bytes = data.len() * 4;
    let mut g = c.benchmark_group("decompress");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(20);

    let cfg = SzxConfig::absolute(eb);
    let szx = szx_core::compress(&data, &cfg).unwrap();
    let mut out = vec![0f32; data.len()];
    g.bench_function(BenchmarkId::new("szx", "miranda-pressure"), |b| {
        b.iter(|| szx_core::decompress_into(&szx, &mut out).unwrap());
    });
    let sz = szx_baselines::szlike::compress(&data, dims, eb).unwrap();
    g.bench_function(BenchmarkId::new("szlike", "miranda-pressure"), |b| {
        b.iter(|| szx_baselines::szlike::decompress(&sz).unwrap());
    });
    let zf = szx_baselines::zfplike::compress(&data, dims, eb).unwrap();
    g.bench_function(BenchmarkId::new("zfplike", "miranda-pressure"), |b| {
        b.iter(|| szx_baselines::zfplike::decompress(&zf).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
