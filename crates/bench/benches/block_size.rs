//! §5.3 ablation: compression speed across block sizes (the quality side is
//! covered by the fig8 binary). Larger blocks amortize per-block overhead;
//! the paper picks 128 as the quality/performance sweet spot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use szx_core::SzxConfig;
use szx_data::{Application, Scale};

fn bench_block_sizes(c: &mut Criterion) {
    let ds = Application::Miranda.generate(Scale::Small, 42);
    let f = ds.field("density").unwrap();
    let eb = 1e-3 * f.value_range();
    let bytes = f.data.len() * 4;

    let mut g = c.benchmark_group("block-size");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(20);
    for bs in [8usize, 16, 32, 64, 128, 224] {
        let cfg = SzxConfig::absolute(eb).with_block_size(bs);
        g.bench_function(BenchmarkId::new("compress", bs), |b| {
            b.iter(|| szx_core::compress(&f.data, &cfg).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_block_sizes);
criterion_main!(benches);
