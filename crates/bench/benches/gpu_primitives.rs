//! §6.2 ablation on the execution model: the recursive-doubling index
//! propagation vs naive sequential chain resolution, and the two-level
//! warp prefix scan vs a sequential scan. These measure simulator (host)
//! time, but the interesting output is the *counted parallel depth*: the
//! propagation needs O(log n) rounds where the chain walk needs O(n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use szx_gpu_sim::machine::{block_exclusive_scan, block_propagate_max};
use szx_gpu_sim::Cost;

fn chain_input(n: usize) -> Vec<i64> {
    // Owners every 5 lanes: realistic leading-byte chains.
    (0..n)
        .map(|i| if i % 5 == 0 { i as i64 } else { i64::MIN })
        .collect()
}

fn sequential_resolve(idx: &[i64]) -> Vec<i64> {
    let mut out = idx.to_vec();
    for i in 1..out.len() {
        if out[i] < out[i - 1] {
            out[i] = out[i - 1];
        }
    }
    out
}

fn bench_propagation(c: &mut Criterion) {
    let mut g = c.benchmark_group("index-propagation");
    g.sample_size(30);
    for n in [128usize, 1024] {
        let idx = chain_input(n);
        g.bench_function(BenchmarkId::new("recursive-doubling", n), |b| {
            b.iter(|| {
                let mut cost = Cost::default();
                block_propagate_max(&idx, &mut cost)
            });
        });
        g.bench_function(BenchmarkId::new("sequential-walk", n), |b| {
            b.iter(|| sequential_resolve(&idx));
        });
        // Depth check (printed once per size): log2 rounds vs n steps.
        let mut cost = Cost::default();
        let a = block_propagate_max(&idx, &mut cost);
        assert_eq!(a, sequential_resolve(&idx), "propagation must be correct");
        eprintln!(
            "index-propagation n={n}: {} parallel rounds (sequential: {n} steps)",
            cost.barriers
        );
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix-scan");
    g.sample_size(30);
    let vals: Vec<u32> = (0..128u32).map(|i| i % 4 + 1).collect();
    g.bench_function("two-level-warp-scan-128", |b| {
        b.iter(|| {
            let mut cost = Cost::default();
            block_exclusive_scan(&vals, &mut cost)
        });
    });
    g.bench_function("sequential-scan-128", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            let mut out = Vec::with_capacity(vals.len());
            for &v in &vals {
                out.push(acc);
                acc += v;
            }
            out
        });
    });
    g.finish();
}

criterion_group!(benches, bench_propagation, bench_scan);
criterion_main!(benches);
