//! Decode-side acceptance bench: the two-pass branch-free decode kernel
//! (`KernelSelect::Kernel`) vs. the scalar reference decoder
//! (`KernelSelect::Scalar`) — plus, on capable hosts, the fused SIMD
//! decoder (`KernelSelect::Simd`) — on 64 MB f32 streams from the CESM-ATM
//! and Nyx generators. All paths reconstruct bit-identical outputs (asserted at
//! setup), so any delta is pure decode-loop throughput. Timed calls reuse a
//! preallocated output buffer and a persistent `DecodeScratch`, so no
//! allocation is inside the measured region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use szx_core::config::KernelSelect;
use szx_core::{DecodeScratch, SzxConfig};
use szx_data::{Application, Scale};

/// 64 MB of f32 (16 Mi elements), stitched from the application's fields.
const TARGET_ELEMS: usize = 16 * 1024 * 1024;

fn dataset_64mb(app: Application) -> Vec<f32> {
    let ds = app.generate_limited(Scale::Large, 7, 16);
    let mut data = Vec::with_capacity(TARGET_ELEMS);
    'outer: loop {
        for f in &ds.fields {
            let room = TARGET_ELEMS - data.len();
            if room == 0 {
                break 'outer;
            }
            data.extend_from_slice(&f.data[..f.data.len().min(room)]);
        }
    }
    data
}

fn bench_decode(c: &mut Criterion) {
    for (name, app) in [("cesm", Application::CesmAtm), ("nyx", Application::Nyx)] {
        let data = dataset_64mb(app);
        let bytes = (data.len() * 4) as u64;
        let stream = szx_core::compress(&data, &SzxConfig::relative(1e-3)).unwrap();

        // The acceptance criterion only counts if both decoders agree on
        // every bit of the reconstruction.
        let scalar: Vec<f32> = szx_core::decompress_with(&stream, KernelSelect::Scalar).unwrap();
        let kernel: Vec<f32> = szx_core::decompress_with(&stream, KernelSelect::Kernel).unwrap();
        for (i, (a, b)) in scalar.iter().zip(&kernel).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}: decode paths diverge at {i}"
            );
        }
        let mut arms = vec![
            ("scalar", KernelSelect::Scalar),
            ("kernel", KernelSelect::Kernel),
        ];
        if szx_core::simd::available() {
            let simd: Vec<f32> = szx_core::decompress_with(&stream, KernelSelect::Simd).unwrap();
            for (i, (a, b)) in scalar.iter().zip(&simd).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}: simd decode diverges at {i}"
                );
            }
            arms.push(("simd", KernelSelect::Simd));
        }
        drop((scalar, kernel));

        let mut out = vec![0f32; data.len()];
        let mut g = c.benchmark_group("decode-throughput");
        g.throughput(Throughput::Bytes(bytes));
        g.sample_size(10);
        for &(kname, sel) in &arms {
            let mut scratch = DecodeScratch::default();
            g.bench_function(BenchmarkId::new(kname, name), |b| {
                b.iter(|| {
                    szx_core::decompress_into_scratch(&stream, &mut out, sel, &mut scratch).unwrap()
                });
            });
            g.bench_function(BenchmarkId::new(format!("{kname}-parallel"), name), |b| {
                b.iter(|| {
                    szx_core::parallel::decompress_into_with(&stream, &mut out, sel).unwrap()
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
