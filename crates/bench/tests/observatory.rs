//! The `BENCH_*.json` comparator: regression detection, improvement
//! acceptance, and bootstrap behaviour of the trajectory directory.

use bench::observatory::{
    compare, latest_bench, next_bench_path, BenchRecord, BenchReport, CompareConfig, SCHEMA_VERSION,
};

fn record(suite: &str, mode: &str) -> BenchRecord {
    BenchRecord {
        suite: suite.into(),
        rel_bound: 1e-3,
        kernel: "kernel".into(),
        mode: mode.into(),
        raw_bytes: 1 << 22,
        compress_gbps: 2.0,
        decompress_gbps: 3.0,
        ratio: 5.0,
        psnr_db: 60.0,
        max_err_over_bound: 0.9,
        roofline_gbps: 10.0,
        hotspots: Vec::new(),
    }
}

fn report(records: Vec<BenchRecord>) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        bench_id: 0,
        created_unix: 1_754_000_000,
        scale: "tiny".into(),
        threads: 2,
        samples: 1,
        fields_per_suite: 1,
        records,
    }
}

#[test]
fn identical_runs_pass() {
    let base = report(vec![record("CESM", "serial"), record("NYX", "parallel")]);
    assert!(compare(&base, &base.clone(), &CompareConfig::default()).is_empty());
}

#[test]
fn throughput_regression_is_detected_and_thresholded() {
    let base = report(vec![record("CESM", "serial")]);
    let mut cur = base.clone();
    // A 3% dip sits inside the default 5% noise budget.
    cur.records[0].compress_gbps = 2.0 * 0.97;
    assert!(compare(&base, &cur, &CompareConfig::default()).is_empty());
    // A 10% dip does not.
    cur.records[0].compress_gbps = 2.0 * 0.90;
    let findings = compare(&base, &cur, &CompareConfig::default());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].metric, "compress_gbps");
    // ...unless throughput checking is off (cross-machine comparisons).
    let lax = CompareConfig {
        check_throughput: false,
        ..CompareConfig::default()
    };
    assert!(compare(&base, &cur, &lax).is_empty());
}

#[test]
fn ratio_and_psnr_regressions_are_detected() {
    let base = report(vec![record("CESM", "serial")]);
    let mut cur = base.clone();
    cur.records[0].ratio = 4.5;
    cur.records[0].psnr_db = 59.0;
    let findings = compare(&base, &cur, &CompareConfig::default());
    let metrics: Vec<&str> = findings.iter().map(|f| f.metric).collect();
    assert!(metrics.contains(&"ratio"), "{findings:?}");
    assert!(metrics.contains(&"psnr_db"), "{findings:?}");
}

#[test]
fn improvements_pass() {
    let base = report(vec![record("CESM", "serial")]);
    let mut cur = base.clone();
    cur.records[0].compress_gbps = 3.5;
    cur.records[0].decompress_gbps = 4.5;
    cur.records[0].ratio = 6.0;
    cur.records[0].psnr_db = 66.0;
    cur.records[0].max_err_over_bound = 0.5;
    assert!(compare(&base, &cur, &CompareConfig::default()).is_empty());
}

#[test]
fn grown_coverage_passes_but_lost_coverage_fails() {
    let base = report(vec![record("CESM", "serial")]);
    let grown = report(vec![record("CESM", "serial"), record("NYX", "parallel")]);
    assert!(compare(&base, &grown, &CompareConfig::default()).is_empty());
    let findings = compare(&grown, &base, &CompareConfig::default());
    assert_eq!(findings.len(), 1);
    assert!(findings[0].metric.contains("coverage"), "{findings:?}");
    assert!(findings[0].key.starts_with("NYX/"));
}

#[test]
fn bound_violation_fails_even_if_baseline_also_violated() {
    let mut base = report(vec![record("CESM", "serial")]);
    base.records[0].max_err_over_bound = 1.5;
    let cur = base.clone();
    let findings = compare(&base, &cur, &CompareConfig::default());
    assert_eq!(findings.len(), 1);
    assert!(findings[0].metric.contains("error bound"), "{findings:?}");
}

#[test]
fn custom_thresholds_are_honored() {
    let base = report(vec![record("CESM", "serial")]);
    let mut cur = base.clone();
    cur.records[0].compress_gbps = 2.0 * 0.97;
    let strict = CompareConfig {
        max_throughput_drop: 0.01,
        ..CompareConfig::default()
    };
    assert_eq!(compare(&base, &cur, &strict).len(), 1);
}

#[test]
fn missing_baseline_bootstraps_cleanly() {
    let dir = std::env::temp_dir().join(format!("szx-obs-boot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Empty directory: no latest, and the next report is BENCH_0.json.
    assert_eq!(latest_bench(&dir), None);
    let (id, path) = next_bench_path(&dir);
    assert_eq!(id, 0);
    assert!(path.ends_with("BENCH_0.json"));

    // Write it (and a decoy) — the trajectory advances to BENCH_1.json.
    std::fs::write(&path, report(vec![record("CESM", "serial")]).to_json()).unwrap();
    std::fs::write(dir.join("BENCH_notanumber.json"), "{}").unwrap();
    let (id1, latest_path) = latest_bench(&dir).unwrap();
    assert_eq!(id1, 0);
    let loaded = BenchReport::from_json(&std::fs::read_to_string(&latest_path).unwrap()).unwrap();
    assert_eq!(loaded.records.len(), 1);
    let (next_id, next_path) = next_bench_path(&dir);
    assert_eq!(next_id, 1);
    assert!(next_path.ends_with("BENCH_1.json"));

    // Non-contiguous history: the latest wins, not the count.
    std::fs::write(dir.join("BENCH_7.json"), "{}").unwrap();
    assert_eq!(latest_bench(&dir).unwrap().0, 7);
    assert_eq!(next_bench_path(&dir).0, 8);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_reports_are_rejected() {
    assert!(BenchReport::from_json("not json").is_err());
    assert!(
        BenchReport::from_json("{}").is_err(),
        "missing schema_version"
    );
    assert!(
        BenchReport::from_json(r#"{"schema_version":1,"bench_id":0}"#).is_err(),
        "missing context/records"
    );
    let missing_field = r#"{"schema_version":1,"bench_id":0,"created_unix":0,
        "context":{"scale":"tiny","threads":1,"samples":1,"fields_per_suite":1},
        "records":[{"suite":"CESM"}]}"#;
    let err = BenchReport::from_json(missing_field).unwrap_err();
    assert!(err.contains("record missing"), "{err}");
}
