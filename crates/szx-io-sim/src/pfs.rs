//! Parallel-file-system performance model.
//!
//! Models a Lustre-class PFS the way the paper's ThetaGPU experiment uses
//! one: `n` ranks concurrently move their compressed payloads; each rank is
//! limited by its own link, and together they are limited by the aggregate
//! backend bandwidth. The model preserves the property Figure 16 turns on —
//! with a fast PFS, (de)compression time dominates the end-to-end dump/load
//! path, so the fastest compressor wins overall even with larger files.

/// PFS bandwidth/latency parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfsConfig {
    /// Aggregate backend bandwidth shared by all ranks, bytes/s.
    pub aggregate_bw: f64,
    /// Per-rank link bandwidth, bytes/s.
    pub rank_bw: f64,
    /// Fixed per-operation latency (open/close, metadata), seconds.
    pub latency: f64,
}

impl PfsConfig {
    /// ThetaGPU-like: Grand Lustre aggregate ~650 GB/s, ~1.5 GB/s per rank.
    pub fn theta_like() -> PfsConfig {
        PfsConfig {
            aggregate_bw: 650e9,
            rank_bw: 1.5e9,
            latency: 0.005,
        }
    }

    /// Effective per-rank bandwidth with `n` concurrent ranks.
    pub fn effective_rank_bw(&self, n_ranks: usize) -> f64 {
        assert!(n_ranks > 0);
        self.rank_bw.min(self.aggregate_bw / n_ranks as f64)
    }

    /// Wall time for `n` ranks to each move `bytes_per_rank` concurrently.
    pub fn transfer_time(&self, n_ranks: usize, bytes_per_rank: usize) -> f64 {
        self.latency + bytes_per_rank as f64 / self.effective_rank_bw(n_ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_ranks_are_link_limited() {
        let pfs = PfsConfig::theta_like();
        // 64 ranks: 650/64 ≈ 10 GB/s each > 1.5 GB/s link => link limited.
        assert_eq!(pfs.effective_rank_bw(64), 1.5e9);
    }

    #[test]
    fn many_ranks_saturate_the_backend() {
        let pfs = PfsConfig::theta_like();
        // 1024 ranks: 650/1024 ≈ 0.63 GB/s each < link.
        let bw = pfs.effective_rank_bw(1024);
        assert!((bw - 650e9 / 1024.0).abs() < 1.0);
        assert!(bw < pfs.rank_bw);
    }

    #[test]
    fn transfer_time_scales_with_contention() {
        let pfs = PfsConfig::theta_like();
        let t64 = pfs.transfer_time(64, 100 << 20);
        let t1024 = pfs.transfer_time(1024, 100 << 20);
        assert!(t1024 > t64, "{t1024} vs {t64}");
    }

    #[test]
    fn smaller_payloads_move_faster() {
        let pfs = PfsConfig::theta_like();
        assert!(pfs.transfer_time(256, 1 << 20) < pfs.transfer_time(256, 64 << 20));
    }

    #[test]
    #[should_panic]
    fn zero_ranks_is_a_bug() {
        PfsConfig::theta_like().effective_rank_bw(0);
    }
}
