//! The Figure-16 dump/load experiment: `n` MPI-like ranks each compress a
//! per-rank payload and write it to the modeled PFS (dump), or read and
//! decompress it (load). Compression and decompression are *measured* on
//! real data with the real codecs; only the file-system transfer is modeled
//! (we do not have a 1024-node Lustre installation — see DESIGN.md §4).

use std::time::Instant;

use crate::pfs::PfsConfig;

/// Which compressor the ranks run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoCodec {
    Szx,
    SzLike,
    ZfpLike,
}

impl IoCodec {
    pub fn name(self) -> &'static str {
        match self {
            IoCodec::Szx => "SZx",
            IoCodec::SzLike => "SZ",
            IoCodec::ZfpLike => "ZFP",
        }
    }
}

/// Per-phase wall times of one dump or load, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Measured (de)compression wall time of one rank. All ranks run
    /// concurrently on distinct nodes, so this *is* the compute phase's
    /// wall time.
    pub codec_time: f64,
    /// Modeled PFS transfer wall time for the rank ensemble.
    pub io_time: f64,
    /// Bytes each rank moved.
    pub bytes_per_rank: usize,
}

impl Breakdown {
    pub fn total(&self) -> f64 {
        self.codec_time + self.io_time
    }
}

/// Compress-and-dump: each of `n_ranks` ranks compresses `data` (its
/// per-rank payload, weak scaling as in the paper) and writes the result.
pub fn dump(
    data: &[f32],
    dims: [usize; 3],
    eb: f64,
    codec: IoCodec,
    n_ranks: usize,
    pfs: &PfsConfig,
) -> Breakdown {
    let start = Instant::now();
    let compressed = compress_with(data, dims, eb, codec);
    let codec_time = start.elapsed().as_secs_f64();
    let io_time = pfs.transfer_time(n_ranks, compressed.len());
    Breakdown {
        codec_time,
        io_time,
        bytes_per_rank: compressed.len(),
    }
}

/// Read-and-decompress: the reverse path.
pub fn load(
    data: &[f32],
    dims: [usize; 3],
    eb: f64,
    codec: IoCodec,
    n_ranks: usize,
    pfs: &PfsConfig,
) -> Breakdown {
    let compressed = compress_with(data, dims, eb, codec);
    let io_time = pfs.transfer_time(n_ranks, compressed.len());
    let start = Instant::now();
    decompress_with(&compressed, codec);
    let codec_time = start.elapsed().as_secs_f64();
    Breakdown {
        codec_time,
        io_time,
        bytes_per_rank: compressed.len(),
    }
}

fn compress_with(data: &[f32], dims: [usize; 3], eb: f64, codec: IoCodec) -> Vec<u8> {
    match codec {
        IoCodec::Szx => {
            szx_core::compress(data, &szx_core::SzxConfig::absolute(eb)).expect("szx compress")
        }
        IoCodec::SzLike => {
            szx_baselines::szlike::compress(data, dims, eb).expect("szlike compress")
        }
        IoCodec::ZfpLike => {
            szx_baselines::zfplike::compress(data, dims, eb).expect("zfplike compress")
        }
    }
}

fn decompress_with(bytes: &[u8], codec: IoCodec) {
    match codec {
        IoCodec::Szx => {
            let _: Vec<f32> = szx_core::decompress(bytes).expect("szx decompress");
        }
        IoCodec::SzLike => {
            szx_baselines::szlike::decompress(bytes).expect("szlike decompress");
        }
        IoCodec::ZfpLike => {
            szx_baselines::zfplike::decompress(bytes).expect("zfplike decompress");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> (Vec<f32>, [usize; 3]) {
        let dims = [64, 64, 16];
        let mut v = Vec::with_capacity(64 * 64 * 16);
        for z in 0..16 {
            for y in 0..64 {
                for x in 0..64 {
                    v.push((x as f32 * 0.1).sin() + (y as f32 * 0.07).cos() + z as f32 * 0.01);
                }
            }
        }
        (v, dims)
    }

    #[test]
    fn dump_produces_positive_phases() {
        let (data, dims) = payload();
        let pfs = PfsConfig::theta_like();
        for codec in [IoCodec::Szx, IoCodec::SzLike, IoCodec::ZfpLike] {
            let b = dump(&data, dims, 1e-3, codec, 256, &pfs);
            assert!(b.codec_time > 0.0, "{codec:?}");
            assert!(b.io_time > 0.0);
            assert!(b.bytes_per_rank > 0 && b.bytes_per_rank < data.len() * 4);
            assert!(b.total() > b.codec_time);
        }
    }

    #[test]
    fn szx_dump_total_wins_despite_larger_files() {
        // The Figure-16 claim. Compression time dominates at ThetaGPU-like
        // bandwidth, so SZx's speed advantage carries the total.
        let (data, dims) = payload();
        let pfs = PfsConfig::theta_like();
        let szx = dump(&data, dims, 1e-3, IoCodec::Szx, 512, &pfs);
        let sz = dump(&data, dims, 1e-3, IoCodec::SzLike, 512, &pfs);
        assert!(
            szx.bytes_per_rank >= sz.bytes_per_rank,
            "SZ compresses smaller"
        );
        assert!(
            szx.total() < sz.total(),
            "szx {} vs sz {}",
            szx.total(),
            sz.total()
        );
    }

    #[test]
    fn load_runs_all_codecs() {
        let (data, dims) = payload();
        let pfs = PfsConfig::theta_like();
        for codec in [IoCodec::Szx, IoCodec::SzLike, IoCodec::ZfpLike] {
            let b = load(&data, dims, 1e-3, codec, 64, &pfs);
            assert!(b.codec_time > 0.0 && b.io_time > 0.0);
        }
    }

    #[test]
    fn io_time_grows_with_rank_count_past_saturation() {
        let (data, dims) = payload();
        let pfs = PfsConfig::theta_like();
        let b64 = dump(&data, dims, 1e-3, IoCodec::Szx, 64, &pfs);
        let b4096 = dump(&data, dims, 1e-3, IoCodec::Szx, 4096, &pfs);
        assert!(b4096.io_time > b64.io_time);
    }
}
