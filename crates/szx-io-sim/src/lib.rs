//! # szx-io-sim
//!
//! Reproduction substrate for the paper's Figure-16 experiment: data
//! dumping/loading on a parallel file system at 64–1024 MPI ranks.
//! (De)compression runs for real with the real codecs; the Lustre-class
//! PFS is replaced by a bandwidth/latency contention model ([`pfs`]),
//! per the substitution policy in DESIGN.md §4.

#![forbid(unsafe_code)]

pub mod experiment;
pub mod pfs;

pub use experiment::{dump, load, Breakdown, IoCodec};
pub use pfs::PfsConfig;
