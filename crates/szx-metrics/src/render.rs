//! Minimal heatmap rendering of 2-D field slices to PGM/PPM, used to
//! regenerate the visualization figures (Figures 1 and 12) without any
//! plotting dependency.

/// Normalize a slice to [0, 1], mapping NaN to 0.
fn normalize(data: &[f32]) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in data {
        if v.is_nan() {
            continue;
        }
        let v = v as f64;
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    let range = if hi > lo { hi - lo } else { 1.0 };
    data.iter()
        .map(|&v| {
            if v.is_nan() {
                0.0
            } else {
                ((v as f64) - lo) / range
            }
        })
        .collect()
}

/// Render a row-major `width × height` slice as a binary PGM (grayscale).
pub fn to_pgm(data: &[f32], width: usize, height: usize) -> Vec<u8> {
    assert_eq!(data.len(), width * height);
    let norm = normalize(data);
    let mut out = format!("P5\n{width} {height}\n255\n").into_bytes();
    out.extend(norm.iter().map(|&v| (v * 255.0).round() as u8));
    out
}

/// A compact blue→cyan→yellow→red colormap (viridis-like ordering of hue,
/// readable for the paper's field visualizations).
fn colormap(t: f64) -> [u8; 3] {
    let t = t.clamp(0.0, 1.0);
    // Piecewise linear through 5 anchor colors.
    const ANCHORS: [[f64; 3]; 5] = [
        [13.0, 8.0, 135.0],   // deep blue
        [84.0, 2.0, 163.0],   // purple
        [204.0, 71.0, 120.0], // magenta
        [248.0, 149.0, 64.0], // orange
        [240.0, 249.0, 33.0], // yellow
    ];
    let x = t * (ANCHORS.len() - 1) as f64;
    let i = (x as usize).min(ANCHORS.len() - 2);
    let f = x - i as f64;
    let mut rgb = [0u8; 3];
    for c in 0..3 {
        rgb[c] = (ANCHORS[i][c] + (ANCHORS[i + 1][c] - ANCHORS[i][c]) * f).round() as u8;
    }
    rgb
}

/// Render a row-major slice as a binary PPM with a perceptual colormap.
pub fn to_ppm(data: &[f32], width: usize, height: usize) -> Vec<u8> {
    assert_eq!(data.len(), width * height);
    let norm = normalize(data);
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    for &v in &norm {
        out.extend_from_slice(&colormap(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_size() {
        let img = to_pgm(&[0.0, 0.5, 1.0, 0.25], 2, 2);
        assert!(img.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(img.len(), b"P5\n2 2\n255\n".len() + 4);
        // min maps to 0, max to 255.
        let pixels = &img[img.len() - 4..];
        assert_eq!(pixels[0], 0);
        assert_eq!(pixels[2], 255);
    }

    #[test]
    fn ppm_is_three_bytes_per_pixel() {
        let img = to_ppm(&[0.0; 6], 3, 2);
        assert!(img.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(img.len(), b"P6\n3 2\n255\n".len() + 18);
    }

    #[test]
    fn colormap_endpoints() {
        assert_eq!(colormap(0.0), [13, 8, 135]);
        assert_eq!(colormap(1.0), [240, 249, 33]);
        assert_eq!(colormap(-5.0), colormap(0.0), "clamped below");
        assert_eq!(colormap(7.0), colormap(1.0), "clamped above");
    }

    #[test]
    fn nan_and_constant_data_render() {
        let img = to_pgm(&[f32::NAN, 1.0, 1.0, 1.0], 2, 2);
        assert_eq!(img.len(), b"P5\n2 2\n255\n".len() + 4);
        let img = to_ppm(&[2.0; 4], 2, 2);
        assert!(!img.is_empty());
    }
}
