//! Compression-ratio aggregation across the fields of an application —
//! the min / overall (harmonic mean) / max columns of Table 3.

/// Aggregated compression-ratio statistics over a set of fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrStats {
    pub min: f64,
    /// Harmonic mean — the paper's "overall" CR. It equals the CR of
    /// compressing all fields together when the fields have equal raw size:
    /// total raw / total compressed.
    pub harmonic_mean: f64,
    pub max: f64,
    pub n_fields: usize,
}

/// Aggregate per-field compression ratios. Panics on an empty slice or a
/// non-positive ratio (both indicate harness bugs).
pub fn aggregate(ratios: &[f64]) -> CrStats {
    assert!(!ratios.is_empty(), "no compression ratios to aggregate");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut inv_sum = 0.0;
    for &r in ratios {
        assert!(r > 0.0 && r.is_finite(), "invalid compression ratio {r}");
        if r < min {
            min = r;
        }
        if r > max {
            max = r;
        }
        inv_sum += 1.0 / r;
    }
    CrStats {
        min,
        harmonic_mean: ratios.len() as f64 / inv_sum,
        max,
        n_fields: ratios.len(),
    }
}

/// Overall CR from raw/compressed byte totals (exact weighted aggregate
/// when field sizes differ).
pub fn overall_from_sizes(pairs: &[(usize, usize)]) -> f64 {
    let raw: usize = pairs.iter().map(|p| p.0).sum();
    let comp: usize = pairs.iter().map(|p| p.1).sum();
    assert!(comp > 0, "zero compressed size");
    raw as f64 / comp as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_basic() {
        let s = aggregate(&[2.0, 4.0, 8.0]);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
        // harmonic mean of 2,4,8 = 3 / (0.5+0.25+0.125) = 3.4285...
        assert!((s.harmonic_mean - 3.428571428571429).abs() < 1e-12);
        assert_eq!(s.n_fields, 3);
    }

    #[test]
    fn harmonic_mean_equals_joint_cr_for_equal_sizes() {
        // Two fields of 100 bytes each compressed to 50 and 10 bytes:
        // joint CR = 200/60; harmonic mean of (2.0, 10.0) = 2/(0.5+0.1).
        let s = aggregate(&[2.0, 10.0]);
        assert!((s.harmonic_mean - 200.0 / 60.0).abs() < 1e-12);
        assert!((overall_from_sizes(&[(100, 50), (100, 10)]) - 200.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn single_field() {
        let s = aggregate(&[5.5]);
        assert_eq!(s.min, 5.5);
        assert_eq!(s.max, 5.5);
        assert!((s.harmonic_mean - 5.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no compression ratios")]
    fn empty_panics() {
        aggregate(&[]);
    }

    #[test]
    #[should_panic(expected = "invalid compression ratio")]
    fn invalid_ratio_panics() {
        aggregate(&[1.0, 0.0]);
    }
}
