//! Error-distribution histograms (probability density function of the
//! pointwise compression error), used for Figure 13.

/// A binned probability density estimate of the compression error.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorPdf {
    /// Center of each bin.
    pub centers: Vec<f64>,
    /// Density value per bin (integrates to ~1 over the span).
    pub density: Vec<f64>,
    /// Fraction of errors that fell outside `[-span, span]` (should be 0 for
    /// an error-bounded compressor evaluated at `span = eb`).
    pub out_of_span: f64,
    /// Half-width of the histogram domain.
    pub span: f64,
}

impl ErrorPdf {
    /// Fraction of errors inside `[-span, span]`.
    pub fn coverage(&self) -> f64 {
        1.0 - self.out_of_span
    }
}

/// Histogram of the signed errors `original − reconstructed` over
/// `[-span, span]` with `bins` equal-width bins. NaN pairs are skipped.
pub fn error_pdf(original: &[f32], reconstructed: &[f32], span: f64, bins: usize) -> ErrorPdf {
    assert_eq!(original.len(), reconstructed.len());
    assert!(bins > 0, "need at least one bin");
    assert!(span > 0.0, "span must be positive");
    let mut counts = vec![0u64; bins];
    let mut outside = 0u64;
    let mut total = 0u64;
    let width = 2.0 * span / bins as f64;
    for (&a, &b) in original.iter().zip(reconstructed) {
        if a.is_nan() || b.is_nan() {
            continue;
        }
        total += 1;
        let e = a as f64 - b as f64;
        if e < -span || e > span {
            outside += 1;
            continue;
        }
        let idx = (((e + span) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let centers = (0..bins)
        .map(|i| -span + (i as f64 + 0.5) * width)
        .collect();
    let density = if total == 0 {
        vec![0.0; bins]
    } else {
        counts
            .iter()
            .map(|&c| c as f64 / total as f64 / width)
            .collect()
    };
    let out_of_span = if total == 0 {
        0.0
    } else {
        outside as f64 / total as f64
    };
    ErrorPdf {
        centers,
        density,
        out_of_span,
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_errors_give_flat_pdf() {
        let n = 10_000;
        let a: Vec<f32> = vec![0.0; n];
        // Errors spread uniformly in [-1e-3, 1e-3].
        let b: Vec<f32> = (0..n)
            .map(|i| (i as f32 / n as f32 * 2.0 - 1.0) * 1e-3)
            .collect();
        let pdf = error_pdf(&a, &b, 1e-3, 20);
        // f32 rounding can push a couple of endpoint errors a hair outside.
        assert!(pdf.out_of_span <= 5e-4, "out of span {}", pdf.out_of_span);
        let mean = pdf.density.iter().sum::<f64>() / 20.0;
        for (&d, &c) in pdf.density.iter().zip(&pdf.centers) {
            assert!(
                (d - mean).abs() / mean < 0.1,
                "bin at {c} density {d} vs mean {mean}"
            );
        }
        // Densities integrate to ~coverage.
        let integral: f64 = pdf.density.iter().map(|d| d * 1e-4).sum();
        assert!(
            (integral - pdf.coverage()).abs() < 1e-9,
            "integral {integral}"
        );
    }

    #[test]
    fn zero_errors_concentrate_in_central_bins() {
        let a: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let pdf = error_pdf(&a, &a, 1e-3, 11);
        // All mass in the bin containing 0 (bin 5 of 11).
        let hot = pdf
            .density
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.total_cmp(y.1))
            .unwrap()
            .0;
        assert_eq!(hot, 5);
        assert_eq!(pdf.coverage(), 1.0);
    }

    #[test]
    fn out_of_span_errors_counted() {
        let a = vec![0.0f32, 0.0, 0.0, 0.0];
        let b = vec![0.0f32, 0.5, -0.5, 0.0001];
        let pdf = error_pdf(&a, &b, 1e-3, 4);
        assert!((pdf.out_of_span - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_pairs_skipped() {
        let a = vec![f32::NAN, 0.0];
        let b = vec![f32::NAN, 0.0];
        let pdf = error_pdf(&a, &b, 1.0, 2);
        assert_eq!(pdf.out_of_span, 0.0);
        assert!(pdf.density.iter().sum::<f64>() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        error_pdf(&[0.0], &[0.0], 1.0, 0);
    }
}
