//! Pointwise distortion statistics: max error, MSE, PSNR, NRMSE.

/// Summary of the pointwise difference between an original dataset and its
/// lossy reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistortionStats {
    /// Largest absolute pointwise error.
    pub max_abs_error: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Peak signal-to-noise ratio in dB (Formula (7) of the paper):
    /// `20·log10((d_max − d_min)/sqrt(MSE))`. Infinite when MSE is 0.
    pub psnr: f64,
    /// Root-mean-square error normalized by the value range.
    pub nrmse: f64,
    /// Global value range of the *original* data.
    pub value_range: f64,
    /// Number of elements compared.
    pub n: usize,
}

/// Compare `original` against `reconstructed` (must be the same length).
///
/// NaNs in either input are skipped pairwise (they carry no distortion
/// information); if all pairs are NaN the result is all-zero with
/// `psnr = inf`.
pub fn distortion_f64(original: &[f64], reconstructed: &[f64]) -> DistortionStats {
    assert_eq!(
        original.len(),
        reconstructed.len(),
        "original and reconstruction must have equal length"
    );
    let mut max_err = 0.0f64;
    let mut sq_sum = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut n = 0usize;
    for (&a, &b) in original.iter().zip(reconstructed) {
        if a.is_nan() || b.is_nan() {
            continue;
        }
        let e = (a - b).abs();
        if e > max_err {
            max_err = e;
        }
        sq_sum += e * e;
        if a < min {
            min = a;
        }
        if a > max {
            max = a;
        }
        n += 1;
    }
    if n == 0 {
        return DistortionStats {
            max_abs_error: 0.0,
            mse: 0.0,
            psnr: f64::INFINITY,
            nrmse: 0.0,
            value_range: 0.0,
            n: 0,
        };
    }
    let mse = sq_sum / n as f64;
    let range = if max >= min { max - min } else { 0.0 };
    let psnr = if mse == 0.0 {
        f64::INFINITY
    } else if range == 0.0 {
        // Degenerate constant data: report against the error itself.
        -10.0 * mse.log10()
    } else {
        20.0 * (range / mse.sqrt()).log10()
    };
    let nrmse = if range == 0.0 {
        0.0
    } else {
        mse.sqrt() / range
    };
    DistortionStats {
        max_abs_error: max_err,
        mse,
        psnr,
        nrmse,
        value_range: range,
        n,
    }
}

/// `f32` convenience wrapper (errors are accumulated in f64).
pub fn distortion(original: &[f32], reconstructed: &[f32]) -> DistortionStats {
    assert_eq!(original.len(), reconstructed.len());
    let mut max_err = 0.0f64;
    let mut sq_sum = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut n = 0usize;
    for (&a, &b) in original.iter().zip(reconstructed) {
        if a.is_nan() || b.is_nan() {
            continue;
        }
        let (a, b) = (a as f64, b as f64);
        let e = (a - b).abs();
        if e > max_err {
            max_err = e;
        }
        sq_sum += e * e;
        if a < min {
            min = a;
        }
        if a > max {
            max = a;
        }
        n += 1;
    }
    if n == 0 {
        return DistortionStats {
            max_abs_error: 0.0,
            mse: 0.0,
            psnr: f64::INFINITY,
            nrmse: 0.0,
            value_range: 0.0,
            n: 0,
        };
    }
    let mse = sq_sum / n as f64;
    let range = if max >= min { max - min } else { 0.0 };
    let psnr = if mse == 0.0 {
        f64::INFINITY
    } else if range == 0.0 {
        -10.0 * mse.log10()
    } else {
        20.0 * (range / mse.sqrt()).log10()
    };
    let nrmse = if range == 0.0 {
        0.0
    } else {
        mse.sqrt() / range
    };
    DistortionStats {
        max_abs_error: max_err,
        mse,
        psnr,
        nrmse,
        value_range: range,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_data_has_infinite_psnr() {
        let d = vec![1.0f32, 2.0, 3.0];
        let s = distortion(&d, &d);
        assert_eq!(s.max_abs_error, 0.0);
        assert_eq!(s.mse, 0.0);
        assert!(s.psnr.is_infinite());
        assert_eq!(s.n, 3);
    }

    #[test]
    fn known_psnr() {
        // range 1.0, constant error 0.1 -> mse 0.01 -> psnr = 20*log10(1/0.1) = 20 dB
        let a = vec![0.0f32, 1.0];
        let b = vec![0.1f32, 0.9];
        let s = distortion(&a, &b);
        assert!((s.psnr - 20.0).abs() < 1e-4, "psnr {}", s.psnr);
        assert!((s.max_abs_error - 0.1).abs() < 1e-7);
        assert!((s.nrmse - 0.1).abs() < 1e-7);
    }

    #[test]
    fn nan_pairs_are_skipped() {
        let a = vec![f32::NAN, 1.0, 2.0];
        let b = vec![f32::NAN, 1.0, 2.5];
        let s = distortion(&a, &b);
        assert_eq!(s.n, 2);
        assert!((s.max_abs_error - 0.5).abs() < 1e-7);
    }

    #[test]
    fn all_nan_is_degenerate_not_a_panic() {
        let a = vec![f32::NAN; 4];
        let s = distortion(&a, &a);
        assert_eq!(s.n, 0);
        assert!(s.psnr.is_infinite());
    }

    #[test]
    fn f64_variant_matches_f32_on_f32_data() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32 * 0.1).sin()).collect();
        let b: Vec<f32> = a.iter().map(|x| x + 0.001).collect();
        let a64: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let s32 = distortion(&a, &b);
        let s64 = distortion_f64(&a64, &b64);
        assert!((s32.psnr - s64.psnr).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        distortion_f64(&[1.0], &[1.0, 2.0]);
    }
}
