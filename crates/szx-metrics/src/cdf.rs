//! Cumulative distribution of per-block *relative value ranges* — the
//! smoothness characterization behind Figure 2 of the paper.
//!
//! A block's relative value range is `(max_block − min_block) / (max_D −
//! min_D)`: the fraction of the dataset's dynamic range a block spans.
//! Datasets where most blocks have tiny relative ranges are "smooth" and
//! compress well under SZx's constant-block scheme.

/// Relative value range of every `block_size`-element block of `data`.
pub fn block_relative_ranges(data: &[f32], block_size: usize) -> Vec<f64> {
    assert!(block_size > 0);
    if data.is_empty() {
        return Vec::new();
    }
    let (mut glo, mut ghi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in data {
        let v = v as f64;
        if v < glo {
            glo = v;
        }
        if v > ghi {
            ghi = v;
        }
    }
    let grange = if ghi > glo { ghi - glo } else { 1.0 };
    data.chunks(block_size)
        .map(|block| {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in block {
                let v = v as f64;
                if v < lo {
                    lo = v;
                }
                if v > hi {
                    hi = v;
                }
            }
            if hi > lo {
                (hi - lo) / grange
            } else {
                0.0
            }
        })
        .collect()
}

/// Empirical CDF evaluated at `points`: for each threshold `t`, the fraction
/// of samples ≤ `t`.
pub fn empirical_cdf(samples: &[f64], points: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return vec![0.0; points.len()];
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    points
        .iter()
        .map(|&t| {
            let idx = sorted.partition_point(|&s| s <= t);
            idx as f64 / sorted.len() as f64
        })
        .collect()
}

/// Figure-2 helper: CDF of block relative ranges at the paper's thresholds.
pub fn block_range_cdf(data: &[f32], block_size: usize, points: &[f64]) -> Vec<f64> {
    let ranges = block_relative_ranges(data, block_size);
    empirical_cdf(&ranges, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_ranges_basic() {
        // Global range 10; first block range 1, second block range 10.
        let data = vec![0.0f32, 1.0, 0.5, 0.2, 0.0, 10.0, 3.0, 4.0];
        let r = block_relative_ranges(&data, 4);
        assert_eq!(r.len(), 2);
        assert!((r[0] - 0.1).abs() < 1e-12);
        assert!((r[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_data_has_zero_ranges() {
        let data = vec![5.0f32; 100];
        let r = block_relative_ranges(&data, 8);
        assert!(r.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let samples = vec![0.1, 0.2, 0.2, 0.5, 0.9];
        let pts: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let cdf = empirical_cdf(&samples, &pts);
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*cdf.last().unwrap(), 1.0);
        assert_eq!(cdf[0], 0.0); // nothing <= 0.0
        assert!((cdf[2] - 0.6).abs() < 1e-12); // 3 of 5 samples <= 0.2
    }

    #[test]
    fn smaller_blocks_are_smoother() {
        // The core premise of Figure 2: with smaller blocks, more blocks
        // have small relative ranges.
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        let c8 = block_range_cdf(&data, 8, &[0.01]);
        let c128 = block_range_cdf(&data, 128, &[0.01]);
        assert!(
            c8[0] >= c128[0],
            "blocksize 8 CDF {} must dominate blocksize 128 CDF {}",
            c8[0],
            c128[0]
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(block_relative_ranges(&[], 8).is_empty());
        assert_eq!(empirical_cdf(&[], &[0.5]), vec![0.0]);
    }
}
