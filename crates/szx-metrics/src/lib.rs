//! # szx-metrics
//!
//! Z-checker-style quality assessment for lossy compression of scientific
//! data, providing every metric the SZx paper reports:
//!
//! * [`psnr`] — max error, MSE, PSNR (Formula 7), NRMSE;
//! * [`ssim`] — windowed 2-D structural similarity (Figure 12);
//! * [`pdf`] — compression-error probability densities (Figure 13);
//! * [`cdf`] — block relative-value-range CDFs (Figure 2);
//! * [`crstats`] — min / harmonic-mean / max compression ratios (Table 3);
//! * [`render`] — PGM/PPM heatmaps of 2-D slices (Figures 1 and 12).

#![forbid(unsafe_code)]

pub mod cdf;
pub mod crstats;
pub mod pdf;
pub mod psnr;
pub mod render;
pub mod ssim;

pub use cdf::{block_range_cdf, block_relative_ranges, empirical_cdf};
pub use crstats::{aggregate, overall_from_sizes, CrStats};
pub use pdf::{error_pdf, ErrorPdf};
pub use psnr::{distortion, distortion_f64, DistortionStats};
pub use render::{to_pgm, to_ppm};
pub use ssim::ssim_2d;
