//! Structural similarity (SSIM) over 2-D slices, the second reconstruction-
//! quality metric of the paper (Figure 12).
//!
//! Mean SSIM over dense 8×8 windows (stride 1), computed in O(N) with
//! summed-area tables — the same windowed formulation Z-checker uses for
//! scientific data:
//!
//! ```text
//! SSIM(x, y) = (2 μx μy + C1)(2 σxy + C2) / ((μx² + μy² + C1)(σx² + σy² + C2))
//! C1 = (0.01 L)², C2 = (0.03 L)², L = value range of the original slice
//! ```

/// Summed-area table for O(1) window sums.
struct Integral {
    w: usize,
    table: Vec<f64>, // (w+1) x (h+1)
}

impl Integral {
    fn build(data: &[f64], w: usize, h: usize) -> Self {
        let stride = w + 1;
        let mut table = vec![0.0; stride * (h + 1)];
        for y in 0..h {
            let mut row = 0.0;
            for x in 0..w {
                row += data[y * w + x];
                table[(y + 1) * stride + (x + 1)] = table[y * stride + (x + 1)] + row;
            }
        }
        Integral { w, table }
    }

    /// Sum over the rectangle `[x0, x0+win) × [y0, y0+win)`.
    #[inline]
    fn window_sum(&self, x0: usize, y0: usize, win: usize) -> f64 {
        let s = self.w + 1;
        let (x1, y1) = (x0 + win, y0 + win);
        self.table[y1 * s + x1] + self.table[y0 * s + x0]
            - self.table[y0 * s + x1]
            - self.table[y1 * s + x0]
    }
}

/// Mean SSIM between two `width × height` slices stored row-major.
///
/// Window size defaults to 8 when `window = 0`. Slices smaller than the
/// window are compared with one window covering the whole slice.
pub fn ssim_2d(
    original: &[f32],
    reconstructed: &[f32],
    width: usize,
    height: usize,
    window: usize,
) -> f64 {
    assert_eq!(original.len(), width * height, "original size mismatch");
    assert_eq!(
        reconstructed.len(),
        width * height,
        "reconstruction size mismatch"
    );
    let win = if window == 0 { 8 } else { window }.min(width).min(height);
    if win == 0 {
        return 1.0;
    }

    let a: Vec<f64> = original.iter().map(|&v| v as f64).collect();
    let b: Vec<f64> = reconstructed.iter().map(|&v| v as f64).collect();

    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &a {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    let range = if hi > lo { hi - lo } else { 1.0 };
    let c1 = (0.01 * range) * (0.01 * range);
    let c2 = (0.03 * range) * (0.03 * range);

    let aa: Vec<f64> = a.iter().map(|&v| v * v).collect();
    let bb: Vec<f64> = b.iter().map(|&v| v * v).collect();
    let ab: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();

    let ia = Integral::build(&a, width, height);
    let ib = Integral::build(&b, width, height);
    let iaa = Integral::build(&aa, width, height);
    let ibb = Integral::build(&bb, width, height);
    let iab = Integral::build(&ab, width, height);

    let npix = (win * win) as f64;
    let mut total = 0.0;
    let mut count = 0usize;
    for y0 in 0..=(height - win) {
        for x0 in 0..=(width - win) {
            let mx = ia.window_sum(x0, y0, win) / npix;
            let my = ib.window_sum(x0, y0, win) / npix;
            let vx = iaa.window_sum(x0, y0, win) / npix - mx * mx;
            let vy = ibb.window_sum(x0, y0, win) / npix - my * my;
            let cxy = iab.window_sum(x0, y0, win) / npix - mx * my;
            let s = ((2.0 * mx * my + c1) * (2.0 * cxy + c2))
                / ((mx * mx + my * my + c1) * (vx + vy + c2));
            total += s;
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(w: usize, h: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                out.push(f(x, y));
            }
        }
        out
    }

    #[test]
    fn identical_slices_have_ssim_one() {
        let img = slice(32, 32, |x, y| ((x + y) as f32 * 0.1).sin());
        let s = ssim_2d(&img, &img, 32, 32, 0);
        assert!((s - 1.0).abs() < 1e-12, "ssim {s}");
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let img = slice(64, 64, |x, y| ((x * y) as f32 * 0.01).sin());
        let noisy_small: Vec<f32> = img
            .iter()
            .enumerate()
            .map(|(i, &v)| v + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let noisy_big: Vec<f32> = img
            .iter()
            .enumerate()
            .map(|(i, &v)| v + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let s_small = ssim_2d(&img, &noisy_small, 64, 64, 0);
        let s_big = ssim_2d(&img, &noisy_big, 64, 64, 0);
        assert!(s_small > s_big, "{s_small} vs {s_big}");
        assert!(s_small > 0.9);
        assert!(s_big < 0.9);
    }

    #[test]
    fn ssim_is_symmetric_in_structure() {
        let a = slice(16, 16, |x, _| x as f32);
        let b = slice(16, 16, |x, _| x as f32 + 0.5);
        let s = ssim_2d(&a, &b, 16, 16, 0);
        // Constant offsets are penalized only through the luminance term.
        assert!(s > 0.8 && s < 1.0, "ssim {s}");
    }

    #[test]
    fn tiny_slice_uses_one_window() {
        let a = vec![1.0f32, 2.0, 3.0, 4.0];
        let s = ssim_2d(&a, &a, 2, 2, 0);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_window_size() {
        let img = slice(32, 32, |x, y| (x ^ y) as f32);
        let s8 = ssim_2d(&img, &img, 32, 32, 8);
        let s4 = ssim_2d(&img, &img, 32, 32, 4);
        assert!((s8 - 1.0).abs() < 1e-12);
        assert!((s4 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn dimension_mismatch_panics() {
        ssim_2d(&[1.0; 4], &[1.0; 4], 3, 2, 0);
    }
}
