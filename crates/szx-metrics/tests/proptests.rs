//! Property-based tests for the quality metrics: mathematical invariants
//! that must hold for arbitrary inputs.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use szx_metrics::{distortion, empirical_cdf, error_pdf, ssim_2d};

fn finite_f32s(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    pvec(-1e6f32..1e6f32, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distortion_identity_is_perfect(data in finite_f32s(1..500)) {
        let s = distortion(&data, &data);
        prop_assert_eq!(s.max_abs_error, 0.0);
        prop_assert_eq!(s.mse, 0.0);
        prop_assert!(s.psnr.is_infinite());
    }

    #[test]
    fn distortion_matches_independent_computation(
        a in finite_f32s(2..300),
        noise in -1.0f32..1.0,
    ) {
        // Note: `v + noise` rounds to f32 (the ulp can exceed `noise` for
        // large magnitudes), so compare against the *actual* differences
        // rather than the nominal noise.
        let b: Vec<f32> = a.iter().map(|v| v + noise).collect();
        let s1 = distortion(&a, &b);
        let diffs: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| (x as f64 - y as f64).abs()).collect();
        let expect_max = diffs.iter().cloned().fold(0.0, f64::max);
        let expect_mse = diffs.iter().map(|d| d * d).sum::<f64>() / diffs.len() as f64;
        prop_assert!((s1.max_abs_error - expect_max).abs() <= 1e-12 * (1.0 + expect_max));
        prop_assert!((s1.mse - expect_mse).abs() <= 1e-9 * (1.0 + expect_mse));
    }

    #[test]
    fn psnr_decreases_as_noise_grows(base in finite_f32s(64..256)) {
        let range = {
            let lo = base.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = base.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            hi - lo
        };
        prop_assume!(range > 1.0);
        let small: Vec<f32> = base.iter().map(|v| v + range * 1e-4).collect();
        let big: Vec<f32> = base.iter().map(|v| v + range * 1e-2).collect();
        let s_small = distortion(&base, &small);
        let s_big = distortion(&base, &big);
        prop_assert!(s_small.psnr > s_big.psnr,
            "{} vs {}", s_small.psnr, s_big.psnr);
    }

    #[test]
    fn error_pdf_mass_accounts_for_everything(
        a in finite_f32s(1..400),
        span_exp in -3i32..3,
        bins in 1usize..40,
    ) {
        let span = 10f64.powi(span_exp);
        let b: Vec<f32> = a.iter().map(|v| v * 1.0001).collect();
        let pdf = error_pdf(&a, &b, span, bins);
        let width = 2.0 * span / bins as f64;
        let inside: f64 = pdf.density.iter().map(|d| d * width).sum();
        prop_assert!((inside + pdf.out_of_span - 1.0).abs() < 1e-9,
            "inside {} + outside {}", inside, pdf.out_of_span);
        prop_assert!(pdf.density.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn empirical_cdf_is_monotone_and_normalized(
        samples in pvec(0.0f64..1.0, 1..300),
        points in pvec(0.0f64..1.0, 1..40),
    ) {
        let mut pts = points;
        pts.sort_by(|a, b| a.total_cmp(b));
        let cdf = empirical_cdf(&samples, &pts);
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for &c in &cdf {
            prop_assert!((0.0..=1.0).contains(&c));
        }
        let full = empirical_cdf(&samples, &[1.0]);
        prop_assert_eq!(full[0], 1.0, "everything is <= the max");
    }

    #[test]
    fn ssim_is_one_for_identical_and_bounded(
        data in pvec(-100f32..100.0, 64..256),
    ) {
        // Make a square-ish slice from whatever length we got.
        let w = (data.len() as f64).sqrt() as usize;
        prop_assume!(w >= 8);
        let img = &data[..w * w];
        let s = ssim_2d(img, img, w, w, 0);
        prop_assert!((s - 1.0).abs() < 1e-9, "self-SSIM {}", s);
        let noisy: Vec<f32> = img.iter().enumerate()
            .map(|(i, &v)| v + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let s = ssim_2d(img, &noisy, w, w, 0);
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&s), "SSIM out of range: {}", s);
    }
}
