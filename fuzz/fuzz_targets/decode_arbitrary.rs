//! libFuzzer wrapper for the decode-arbitrary-bytes differential target:
//! any input must decode identically (bytes or error) across the serial
//! scalar, serial kernel, parallel, random-access, and streaming paths.
#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    if let Err(failure) = szx_fuzz::run_target(szx_fuzz::FuzzTarget::DecodeArbitrary, data) {
        panic!("{failure}");
    }
});
