//! libFuzzer wrapper for the roundtrip-with-arbitrary-config target: the
//! input bytes decode (totally) into a config + synthetic dataset; the
//! compressed stream must be identical across encode paths and every
//! decoded element must honour the header's error bound.
#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    if let Err(failure) = szx_fuzz::run_target(szx_fuzz::FuzzTarget::RoundtripConfig, data) {
        panic!("{failure}");
    }
});
