//! libFuzzer wrapper for the streaming-container torture target: arbitrary
//! bytes through the frame index, header, and TOC parsers — errors allowed,
//! panics and cross-path divergence are findings.
#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    if let Err(failure) = szx_fuzz::run_target(szx_fuzz::FuzzTarget::StreamTorture, data) {
        panic!("{failure}");
    }
});
