//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use szx_data::{Application, Scale};

/// Tiny-scale dataset for fast integration tests; deterministic per app.
pub fn tiny(app: Application) -> szx_data::Dataset {
    app.generate(Scale::Tiny, 0xC0FFEE)
}

/// Max pointwise |a - b| over two f32 slices (NaN pairs skipped).
pub fn max_err(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .filter(|(x, y)| !x.is_nan() && !y.is_nan())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .fold(0.0, f64::max)
}
