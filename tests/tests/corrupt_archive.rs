//! Hostile-input tests for the decoder: a compressed stream that has been
//! truncated, bit-flipped, or forged must produce `Err(SzxError::...)` —
//! never a panic, an out-of-bounds read, or an absurd allocation. Both the
//! serial and the parallel decompressor are held to the same contract.

use szx_core::stream::HEADER_LEN;
use szx_core::{KernelSelect, SzxConfig};

/// Decode `bytes` with the scalar oracle, the branch-free kernel, and the
/// explicit SIMD path; assert they agree on whether the stream is
/// decodable, and — when it is — on every reconstructed bit. Returns
/// whether decoding succeeded.
fn scalar_kernel_parity(bytes: &[u8], what: &str) -> bool {
    let s = szx_core::decompress_with::<f32>(bytes, KernelSelect::Scalar);
    let k = szx_core::decompress_with::<f32>(bytes, KernelSelect::Kernel);
    let v = szx_core::decompress_with::<f32>(bytes, KernelSelect::Simd);
    assert_eq!(
        s.is_ok(),
        k.is_ok(),
        "{what}: scalar/kernel decoders disagree on decodability"
    );
    assert_eq!(
        s.is_ok(),
        v.is_ok(),
        "{what}: scalar/simd decoders disagree on decodability"
    );
    match (s, k, v) {
        (Ok(a), Ok(b), Ok(c)) => {
            for (i, ((x, y), z)) in a.iter().zip(&b).zip(&c).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}");
                assert_eq!(x.to_bits(), z.to_bits(), "{what}: simd bit mismatch at {i}");
            }
            true
        }
        _ => false,
    }
}

fn sample_stream() -> (Vec<f32>, Vec<u8>) {
    let data: Vec<f32> = (0..4096)
        .map(|i| (i as f32 * 0.01).sin() * 10.0 + (i as f32 * 0.37).cos())
        .collect();
    let bytes = szx_core::compress(&data, &SzxConfig::absolute(1e-4)).unwrap();
    (data, bytes)
}

/// Byte offset of the zsize array for an f32 stream.
fn zsize_off(bytes: &[u8]) -> usize {
    let h = szx_core::inspect(bytes).unwrap();
    let nblocks = h.num_blocks();
    HEADER_LEN + nblocks.div_ceil(8) + nblocks * 4
}

/// Byte offset of the payload section for an f32 stream.
fn payload_off(bytes: &[u8]) -> usize {
    let h = szx_core::inspect(bytes).unwrap();
    zsize_off(bytes) + h.n_nonconstant * 2
}

#[test]
fn every_truncation_point_is_a_clean_error() {
    let (_, bytes) = sample_stream();
    for cut in 0..bytes.len() {
        let r = szx_core::decompress::<f32>(&bytes[..cut]);
        assert!(r.is_err(), "truncation at {cut}/{} decoded", bytes.len());
        let r = szx_core::parallel::decompress::<f32>(&bytes[..cut]);
        assert!(r.is_err(), "parallel truncation at {cut} decoded");
        // The kernel decoder must reject every truncation the scalar one
        // does — no panic, no out-of-bounds load from its overlapping-read
        // arena.
        let r = szx_core::decompress_with::<f32>(&bytes[..cut], KernelSelect::Kernel);
        assert!(r.is_err(), "kernel truncation at {cut} decoded");
        let r = szx_core::parallel::decompress_with::<f32>(&bytes[..cut], KernelSelect::Kernel);
        assert!(r.is_err(), "parallel kernel truncation at {cut} decoded");
        // The SIMD decoder validates payloads before its gather pass; it
        // must reject exactly what the scalar decoder rejects.
        let r = szx_core::decompress_with::<f32>(&bytes[..cut], KernelSelect::Simd);
        assert!(r.is_err(), "simd truncation at {cut} decoded");
    }
}

#[test]
fn flipped_zsize_bytes_error_out() {
    let (_, bytes) = sample_stream();
    let z = zsize_off(&bytes);
    let h = szx_core::inspect(&bytes).unwrap();
    assert!(h.n_nonconstant > 0, "fixture must have payloads");

    // Oversizing any zsize entry pushes the payload prefix sum past the end
    // of the stream: the index build must reject it.
    for entry in 0..h.n_nonconstant.min(8) {
        let mut bad = bytes.clone();
        bad[z + 2 * entry] = 0xff;
        bad[z + 2 * entry + 1] = 0xff;
        assert!(
            szx_core::decompress::<f32>(&bad).is_err(),
            "oversized zsize[{entry}] decoded"
        );
        assert!(szx_core::parallel::decompress::<f32>(&bad).is_err());
    }

    // Shrinking an entry misaligns every later payload; decoding may fail
    // or produce garbage values, but must never panic or read OOB — and
    // the scalar and kernel decoders must agree on the garbage.
    let mut bad = bytes.clone();
    bad[z] = 1;
    bad[z + 1] = 0;
    scalar_kernel_parity(&bad, "shrunk zsize");
    let _ = szx_core::parallel::decompress::<f32>(&bad);
    let _ = szx_core::parallel::decompress_with::<f32>(&bad, KernelSelect::Kernel);
}

#[test]
fn oversized_req_len_is_rejected() {
    let (_, bytes) = sample_stream();
    let p = payload_off(&bytes);
    // Each payload starts with its required length R_k; legal f32 values
    // are 9..=32. Forge impossible ones.
    for forged in [0u8, 8, 33, 64, 0xff] {
        let mut bad = bytes.clone();
        bad[p] = forged;
        assert!(
            szx_core::decompress::<f32>(&bad).is_err(),
            "req_len={forged} decoded"
        );
        assert!(szx_core::parallel::decompress::<f32>(&bad).is_err());
    }
}

#[test]
fn forged_header_fields_are_rejected() {
    let (_, bytes) = sample_stream();

    // Element count inflated far past the actual sections. Must error out
    // before allocating the claimed output.
    let mut bad = bytes.clone();
    bad[12..20].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert!(szx_core::decompress::<f32>(&bad).is_err());

    // Element count slightly inflated (one extra block's worth).
    let mut bad = bytes.clone();
    let h = szx_core::inspect(&bytes).unwrap();
    bad[12..20].copy_from_slice(&((h.n + h.block_size) as u64).to_le_bytes());
    assert!(szx_core::decompress::<f32>(&bad).is_err());

    // Non-constant count disagreeing with the state bits.
    let mut bad = bytes.clone();
    bad[28..36].copy_from_slice(&((h.n_nonconstant as u64) - 1).to_le_bytes());
    assert!(szx_core::decompress::<f32>(&bad).is_err());

    // Wrong element type.
    assert!(szx_core::decompress::<f64>(&bytes).is_err());

    // Block size outside the supported range.
    let mut bad = bytes.clone();
    bad[8..12].copy_from_slice(&(1u32 << 20).to_le_bytes());
    assert!(szx_core::decompress::<f32>(&bad).is_err());
}

#[test]
fn single_byte_flips_never_panic() {
    // Exhaustive single-byte corruption over a small stream: any byte set
    // to 0x00/0xff may yield Err or garbage-but-bounded output; every
    // decoder must survive all of them, and scalar vs kernel must agree
    // both on decodability and on the reconstructed bits.
    let data: Vec<f32> = (0..640).map(|i| (i as f32 * 0.1).sin() * 3.0).collect();
    let bytes = szx_core::compress(&data, &SzxConfig::absolute(1e-3)).unwrap();
    for pos in 0..bytes.len() {
        for val in [0x00u8, 0xff, 0x5a] {
            if bytes[pos] == val {
                continue;
            }
            let mut bad = bytes.clone();
            bad[pos] = val;
            scalar_kernel_parity(&bad, &format!("byte {pos} = {val:#x}"));
            let _ = szx_core::parallel::decompress::<f32>(&bad);
            let _ = szx_core::parallel::decompress_with::<f32>(&bad, KernelSelect::Kernel);
        }
    }
}

#[test]
fn multi_byte_corruption_windows_keep_path_parity() {
    // Contiguous 2–4 byte corruption windows — wide enough to straddle a
    // zsize entry, a payload R_k byte plus its leading codes, or a header
    // field boundary, which single-byte flips never exercise. Every window
    // runs through the szx-fuzz differential oracle, so all five decode
    // paths (serial scalar, serial kernel, parallel, random access,
    // streaming) are held to the agreement contract at once, not just the
    // scalar/kernel pair.
    let data: Vec<f32> = (0..640).map(|i| (i as f32 * 0.1).sin() * 3.0).collect();
    let bytes = szx_core::compress(&data, &SzxConfig::absolute(1e-3)).unwrap();
    let patterns: [&[u8]; 3] = [
        &[0x00, 0x00, 0x00, 0x00],
        &[0xff, 0xff, 0xff, 0xff],
        &[0xa5, 0x5a, 0xa5, 0x5a],
    ];
    for width in [2usize, 3, 4] {
        // Stride keeps the sweep ~O(n) per (width, pattern) while still
        // hitting every section; offset by width so successive widths land
        // on different byte positions.
        for start in (0..bytes.len().saturating_sub(width)).step_by(5) {
            for pattern in patterns {
                let mut bad = bytes.clone();
                bad[start..start + width].copy_from_slice(&pattern[..width]);
                if bad == bytes {
                    continue;
                }
                if let Err(failure) =
                    szx_fuzz::run_target_guarded(szx_fuzz::FuzzTarget::DecodeArbitrary, &bad)
                {
                    panic!(
                        "window [{start}..{}] {pattern:02x?}: {failure}",
                        start + width
                    );
                }
            }
        }
    }
}

#[test]
fn corruption_windows_across_frame_boundaries() {
    // Same idea against the streaming container: windows that straddle a
    // frame-length word and the next frame's header are only reachable
    // through the framed parser.
    let mut w = szx_core::FrameWriter::new(SzxConfig::absolute(1e-3)).unwrap();
    let data: Vec<f32> = (0..900).map(|i| (i as f32 * 0.05).cos() * 2.0).collect();
    for chunk in data.chunks(300) {
        w.push(chunk).unwrap();
    }
    let container = w.into_bytes();
    for width in [2usize, 4] {
        for start in (0..container.len().saturating_sub(width)).step_by(7) {
            let mut bad = container.clone();
            for b in &mut bad[start..start + width] {
                *b ^= 0xff;
            }
            if let Err(failure) =
                szx_fuzz::run_target_guarded(szx_fuzz::FuzzTarget::StreamTorture, &bad)
            {
                panic!("frame window [{start}..{}]: {failure}", start + width);
            }
        }
    }
}

#[test]
fn random_access_and_inspect_survive_corruption() {
    let (_, bytes) = sample_stream();
    // Truncations through the header and index sections.
    for cut in [0, 4, 17, 35, 36, 40, zsize_off(&bytes), payload_off(&bytes)] {
        let cut = cut.min(bytes.len());
        let _ = szx_core::inspect(&bytes[..cut]);
        let _ = szx_core::RandomAccess::<f32>::new(&bytes[..cut]);
    }
    let ra = szx_core::RandomAccess::<f32>::new(&bytes).unwrap();
    // Out-of-range block requests must be errors, not panics.
    let mut buf = vec![0f32; 128];
    assert!(ra.decode_block(ra.num_blocks(), &mut buf).is_err());
}
