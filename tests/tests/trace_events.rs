//! Flight-recorder end-to-end checks: the Chrome-trace export must be valid
//! JSON (asserted by parsing it back with the in-tree parser), every Begin
//! must have a matching End at a later-or-equal timestamp, parallel chunk
//! workers must land on distinct thread lanes, and two identical runs must
//! produce the same event *set* (names/phases/args — timestamps and thread
//! ids are of course run-dependent).
//!
//! Everything lives in ONE test function: the trace recorder is a
//! process-wide singleton (like the telemetry registry, see
//! `telemetry_counters.rs`), and libtest runs `#[test]` functions on
//! multiple threads, so separate tests would interleave their events.

use std::collections::HashMap;

use szx_core::SzxConfig;
use szx_data::{Application, Scale};
use szx_telemetry::json::Json;
use szx_telemetry::{take_trace, TraceCapture, TraceEvent, TracePhase};

fn field() -> Vec<f32> {
    let ds = Application::Miranda.generate(Scale::Tiny, 0x7E1E);
    ds.fields
        .iter()
        .flat_map(|f| f.data.iter().copied())
        .collect()
}

/// Per-thread Begin/End events must nest like brackets, with end >= begin.
fn check_pairing(capture: &TraceCapture) {
    let mut stacks: HashMap<u64, Vec<&TraceEvent>> = HashMap::new();
    for ev in &capture.events {
        match ev.phase {
            TracePhase::Begin => stacks.entry(ev.tid).or_default().push(ev),
            TracePhase::End => {
                let open = stacks
                    .get_mut(&ev.tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| {
                        panic!("End {:?} on tid {} with no open zone", ev.name, ev.tid)
                    });
                assert_eq!(
                    open.name, ev.name,
                    "mismatched zone nesting on tid {}",
                    ev.tid
                );
                assert!(
                    open.ts_ns <= ev.ts_ns,
                    "zone {:?} ends ({}) before it begins ({})",
                    ev.name,
                    ev.ts_ns,
                    open.ts_ns
                );
            }
            TracePhase::Instant => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left zones open: {stack:?}");
    }
}

/// The run-independent identity of a capture: sorted (name, phase, arg).
fn event_set(capture: &TraceCapture) -> Vec<(&'static str, u8, u64)> {
    let mut set: Vec<_> = capture
        .events
        .iter()
        .map(|e| {
            let ph = match e.phase {
                TracePhase::Begin => 0u8,
                TracePhase::End => 1,
                TracePhase::Instant => 2,
            };
            (e.name, ph, e.arg)
        })
        .collect();
    set.sort_unstable();
    set
}

fn names(capture: &TraceCapture) -> Vec<&'static str> {
    capture.events.iter().map(|e| e.name).collect()
}

#[test]
fn chrome_trace_roundtrip_lanes_and_determinism() {
    // The rayon shim sizes its pool from this env var per call; the CI box
    // may expose a single core, so force real parallelism explicitly.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    szx_telemetry::set_trace_enabled(true);
    let _ = take_trace(); // drop anything a previous run left behind

    let data = field();
    let cfg = SzxConfig::relative(1e-3);

    // --- Serial pipeline: structural checks on the raw capture. ---
    let bytes = szx_core::compress(&data, &cfg).unwrap();
    let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
    assert_eq!(back.len(), data.len());
    let serial = take_trace();
    assert_eq!(serial.dropped, 0, "default capacity must not overflow here");
    for stage in [
        "compress.total",
        "compress.range_scan",
        "compress.encode_blocks",
        "decompress.total",
    ] {
        assert!(
            names(&serial).contains(&stage),
            "missing stage zone {stage}"
        );
    }
    check_pairing(&serial);

    // --- Chrome export parses back as JSON with the documented shape. ---
    let rendered = szx_telemetry::render_chrome_trace(&serial);
    let doc = Json::parse(&rendered).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    // Metadata rows (process/thread names) plus one row per event.
    assert!(events.len() > serial.events.len());
    let mut begins = 0usize;
    let mut ends = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        assert!(ev.get("pid").and_then(Json::as_f64).is_some());
        assert!(ev.get("tid").and_then(Json::as_f64).is_some());
        match ph {
            "B" => begins += 1,
            "E" => ends += 1,
            "i" => assert_eq!(ev.get("s").and_then(Json::as_str), Some("t")),
            "M" => continue, // metadata carries no timestamp
            other => panic!("unexpected phase {other:?}"),
        }
        assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "ts on {ph}");
    }
    assert_eq!(begins, ends, "unbalanced B/E rows in the export");
    assert!(begins > 0);
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(Json::as_f64);
    assert_eq!(dropped, Some(0.0));

    // --- Parallel pipeline: chunk workers occupy distinct lanes. ---
    let pbytes = szx_core::parallel::compress(&data, &cfg).unwrap();
    let pback: Vec<f32> = szx_core::parallel::decompress(&pbytes).unwrap();
    assert_eq!(pback.len(), data.len());
    let parallel = take_trace();
    check_pairing(&parallel);
    let chunk_tids: std::collections::HashSet<u64> = parallel
        .events
        .iter()
        .filter(|e| e.name == "compress.chunk" && e.phase == TracePhase::Begin)
        .map(|e| e.tid)
        .collect();
    assert!(
        chunk_tids.len() >= 2,
        "expected chunk zones on >=2 threads, got tids {chunk_tids:?}"
    );
    // The chrome export gives each of those lanes its own thread_name row.
    let prendered = szx_telemetry::render_chrome_trace(&parallel);
    let pdoc = Json::parse(&prendered).unwrap();
    let lane_rows = pdoc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .count();
    assert!(lane_rows >= chunk_tids.len());

    // --- Determinism: identical runs emit the identical event set. ---
    let run = || {
        let b = szx_core::parallel::compress(&data, &cfg).unwrap();
        let _: Vec<f32> = szx_core::parallel::decompress(&b).unwrap();
        take_trace()
    };
    let (a, b) = (run(), run());
    assert_eq!(event_set(&a), event_set(&b), "event set is run-dependent");

    szx_telemetry::set_trace_enabled(false);
    let _ = take_trace();
}
