//! End-to-end observability: stream frames through `FrameWriter` /
//! `FrameReader` with a JSON-lines event sink installed and the resource
//! accountant sampling, then check the registry snapshot renders to
//! Prometheus text and embeds in a schema-valid run manifest.
//!
//! The whole check lives in ONE test function: the telemetry registry and
//! the event sink are process-wide singletons, and the libtest harness runs
//! `#[test]` functions on multiple threads.

use std::sync::mpsc;

use szx_telemetry::json::Json;

/// Event sink that forwards every write to a channel so the test can
/// inspect the emitted lines without touching the filesystem.
struct ChanWriter(mpsc::Sender<Vec<u8>>);

impl std::io::Write for ChanWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.send(buf.to_vec()).ok();
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn streaming_run_exports_events_metrics_and_manifest() {
    let tel = szx_telemetry::global();
    szx_telemetry::set_enabled(true);
    tel.reset();

    let (tx, rx) = mpsc::channel();
    szx_telemetry::install_event_sink(Box::new(ChanWriter(tx)));
    let acc = szx_telemetry::ResourceAccountant::start(std::time::Duration::from_millis(5));

    // 40k f32 in 8192-element frames: 4 full frames + 1 partial.
    let data: Vec<f32> = (0..40_000).map(|i| (i as f32 * 0.01).sin()).collect();
    let total_raw = (data.len() * 4) as u64;
    let mut w = szx_core::streaming::FrameWriter::new(szx_core::SzxConfig::absolute(1e-3))
        .expect("valid config");
    let mut meter = szx_telemetry::ProgressMeter::new(Some(total_raw));
    let mut prev = 0u64;
    for chunk in data.chunks(8192) {
        w.push(chunk).expect("frame compresses");
        let s = *w.stats();
        meter.on_frame((chunk.len() * 4) as u64, s.compressed_bytes - prev);
        prev = s.compressed_bytes;
    }
    let progress = meter.snapshot();
    assert_eq!(progress.frames, 5);
    assert_eq!(progress.raw_bytes, total_raw);
    assert_eq!(progress.fraction, Some(1.0), "all input accounted for");
    assert!(progress.gbps > 0.0);

    let container = w.into_bytes();
    let reader = szx_core::streaming::FrameReader::new(&container).expect("container parses");
    let back: Vec<f32> = reader.frame(2).expect("random access decodes");
    assert_eq!(back.len(), 8192);

    acc.stop();
    drop(szx_telemetry::take_event_sink());
    assert!(!szx_telemetry::event_sink_installed());

    // Every event is one parseable JSON line, seq strictly sequential:
    // 5 frame.compressed from the writer, 1 frame.decoded from the reader.
    let text: String = rx
        .try_iter()
        .map(|b| String::from_utf8(b).expect("utf-8 event bytes"))
        .collect();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "events:\n{text}");
    let mut names = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let v = Json::parse(line).expect("event line parses as JSON");
        assert_eq!(v.get("seq").and_then(Json::as_f64), Some(i as f64));
        assert!(v.get("ts_ms").and_then(Json::as_f64).is_some());
        names.push(v.get("event").and_then(Json::as_str).unwrap().to_string());
    }
    assert_eq!(names.iter().filter(|n| *n == "frame.compressed").count(), 5);
    assert_eq!(names.iter().filter(|n| *n == "frame.decoded").count(), 1);

    let report = tel.snapshot();
    // The accountant published the process gauges — real values on Linux,
    // explicit zeroes where procfs is absent, but always present.
    assert!(report.gauge("process.peak_rss_bytes").is_some());
    assert!(report.gauge("process.utime_seconds").is_some());
    assert_eq!(
        report.counter("stream.bytes.raw"),
        Some(total_raw),
        "streaming counters reached the registry"
    );

    // The snapshot renders as Prometheus text exposition…
    let prom = szx_telemetry::render_prometheus(&report);
    assert!(prom.contains("# TYPE szx_stream_bytes_raw_total counter"));
    assert!(prom.contains("# TYPE szx_process_peak_rss_bytes gauge"));
    assert!(prom.contains("szx_stream_frame_bytes_bucket"));

    // …and embeds in a run manifest that round-trips through validation.
    let mut m = szx_telemetry::Manifest::new("stream");
    m.set_config(&[("bound", szx_telemetry::Value::F64(1e-3))]);
    m.set_dataset("synthetic", total_raw, szx_telemetry::fnv1a64(b"synthetic"));
    m.set_metrics(&report);
    let parsed = szx_telemetry::Manifest::parse(&m.render()).expect("manifest validates");
    let metrics = parsed.get("metrics").expect("metrics section present");
    assert!(
        metrics.get("counters").is_some() || metrics.get("spans").is_some(),
        "metrics snapshot carries instrument sections"
    );

    szx_telemetry::set_enabled(false);
}
