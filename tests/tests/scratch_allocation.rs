//! Regression test for the per-block allocation churn the `EncodeScratch`
//! arena removed: the encoder publishes how many times the arena had to
//! grow (`compress.scratch.grows`), and that number must stay O(1) per
//! encode call / per parallel chunk — not O(blocks).
//!
//! Single test function: the telemetry registry is process-global and this
//! file is its own test binary (see telemetry_counters.rs).

use szx_core::config::KernelSelect;
use szx_core::SzxConfig;

#[test]
fn scratch_arena_growth_is_bounded() {
    szx_telemetry::set_enabled(true);
    let tel = szx_telemetry::global();

    // ~4000 blocks of 128, noisy enough that every block is non-constant.
    let data: Vec<f32> = (0..512_000)
        .map(|i| (i as f32 * 0.37).sin() * 1e3 + (i as f32 * 7.91).cos())
        .collect();
    let nblocks = data.len().div_ceil(128);
    assert!(nblocks >= 4000);

    for sel in [KernelSelect::Scalar, KernelSelect::Kernel] {
        let cfg = SzxConfig::absolute(1e-4).with_kernel(sel);

        // Serial: one scratch arena for the whole call. Uniform block
        // sizes mean a single high-water-mark growth.
        tel.reset();
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        assert!(!bytes.is_empty());
        let grows = tel
            .snapshot()
            .counter("compress.scratch.grows")
            .unwrap_or(0);
        // The kernel path grows its word arena exactly once (first block);
        // the scalar path reuses the pre-existing bit/byte pools and never
        // grows it. Either way: O(1), not O(blocks).
        let expect = u64::from(sel == KernelSelect::Kernel);
        assert_eq!(grows, expect, "serial ({sel:?}): arena growths");

        // Parallel: one arena per rayon chunk, never one per block.
        tel.reset();
        let bytes = szx_core::parallel::compress(&data, &cfg).unwrap();
        assert!(!bytes.is_empty());
        let grows = tel
            .snapshot()
            .counter("compress.scratch.grows")
            .unwrap_or(0);
        let max_chunks = (rayon::current_num_threads() * 4 + 1) as u64;
        assert!(
            grows <= max_chunks,
            "parallel ({sel:?}): {grows} grows for {nblocks} blocks (expected <= {max_chunks})"
        );
        if sel == KernelSelect::Kernel {
            assert!(grows >= 1, "parallel kernel path must use the arena");
        }
    }
}
