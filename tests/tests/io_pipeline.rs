//! Figure-16-path integration: the dump/load experiment on real generated
//! Nyx data, plus disk round-trips through the raw-file I/O helpers.

use szx_data::Application;
use szx_integration_tests::tiny;
use szx_io_sim::{dump, load, IoCodec, PfsConfig};

#[test]
fn dump_and_load_breakdowns_are_consistent() {
    let ds = tiny(Application::Nyx);
    let f = ds.field("baryon-density").unwrap();
    let eb = 1e-2 * f.value_range();
    let pfs = PfsConfig::theta_like();
    for codec in [IoCodec::Szx, IoCodec::SzLike, IoCodec::ZfpLike] {
        let d = dump(&f.data, f.dims, eb, codec, 256, &pfs);
        let l = load(&f.data, f.dims, eb, codec, 256, &pfs);
        assert!(d.total() > 0.0 && l.total() > 0.0);
        assert_eq!(d.bytes_per_rank, l.bytes_per_rank, "{codec:?}");
        assert!(d.bytes_per_rank < f.raw_bytes(), "{codec:?} must compress");
    }
}

#[test]
fn szx_has_fastest_codec_phase() {
    let ds = tiny(Application::Nyx);
    let f = ds.field("temperature").unwrap();
    let eb = 1e-3 * f.value_range();
    let pfs = PfsConfig::theta_like();
    let szx = dump(&f.data, f.dims, eb, IoCodec::Szx, 512, &pfs);
    let sz = dump(&f.data, f.dims, eb, IoCodec::SzLike, 512, &pfs);
    let zfp = dump(&f.data, f.dims, eb, IoCodec::ZfpLike, 512, &pfs);
    assert!(
        szx.codec_time < sz.codec_time && szx.codec_time < zfp.codec_time,
        "szx {} sz {} zfp {}",
        szx.codec_time,
        sz.codec_time,
        zfp.codec_time
    );
}

#[test]
fn raw_field_files_roundtrip_through_disk() {
    let ds = tiny(Application::CesmAtm);
    let f = &ds.fields[0];
    let dir = std::env::temp_dir().join("szx-int-io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("field.f32");
    szx_data::io::write_f32_raw(&path, &f.data).unwrap();
    let back = szx_data::io::read_f32_raw(&path).unwrap();
    assert_eq!(back, f.data);
    std::fs::remove_file(path).unwrap();
}
