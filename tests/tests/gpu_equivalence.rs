//! The central claim of the GPU reproduction: the simulated cuSZx kernels
//! compute exactly the same function as the CPU codec, on realistic data
//! from every application generator.

use szx_core::SzxConfig;
use szx_data::Application;
use szx_gpu_sim::{compress_gpu, decompress_gpu, A100, V100};
use szx_integration_tests::tiny;

#[test]
fn gpu_streams_byte_identical_across_apps() {
    for app in Application::ALL {
        let ds = tiny(app);
        let f = &ds.fields[0];
        let eb = (1e-3 * f.value_range()).max(1e-30);
        let cfg = SzxConfig::absolute(eb);
        let cpu = szx_core::compress(&f.data, &cfg).unwrap();
        let (gpu, _) = compress_gpu(&f.data, &cfg).unwrap();
        assert_eq!(cpu, gpu, "{}/{}", ds.name, f.name);
    }
}

#[test]
fn gpu_reconstruction_identical_across_apps() {
    for app in [
        Application::Miranda,
        Application::Hurricane,
        Application::QmcPack,
    ] {
        let ds = tiny(app);
        let f = &ds.fields[0];
        let eb = (1e-4 * f.value_range()).max(1e-30);
        let cfg = SzxConfig::absolute(eb);
        let bytes = szx_core::compress(&f.data, &cfg).unwrap();
        let cpu: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        let (gpu, cost) = decompress_gpu(&bytes).unwrap();
        assert_eq!(cpu, gpu, "{}/{}", ds.name, f.name);
        assert!(cost.shuffles > 0, "index propagation exercised");
    }
}

#[test]
fn modeled_throughput_ordering_matches_figure_14() {
    // On real Nyx-like data: cuSZx must beat the comparator models on both
    // devices, compression and decompression.
    let ds = tiny(Application::Nyx);
    let f = ds.field("velocity-x").unwrap();
    let eb = 1e-3 * f.value_range();
    let x = szx_gpu_sim::models::cuszx_model(&f.data, eb);
    let s = szx_gpu_sim::models::cusz_model(&f.data, f.dims, eb);
    let z = szx_gpu_sim::models::cuzfp_model(&f.data, f.dims, eb);
    for gpu in [A100, V100] {
        for decomp in [false, true] {
            let pick = |m: &szx_gpu_sim::models::ModelResult| {
                gpu.throughput_gbps(m.raw_len, if decomp { &m.decomp } else { &m.comp })
            };
            let (tx, ts, tz) = (pick(&x), pick(&s), pick(&z));
            assert!(
                tx > ts && tx > tz,
                "{} decomp={decomp}: cuSZx {tx:.0} vs cuSZ {ts:.0} / cuZFP {tz:.0}",
                gpu.name
            );
            // Paper's claimed advantage: 2-16x over the second best.
            let second = ts.max(tz);
            assert!(tx / second >= 2.0, "advantage only {:.1}x", tx / second);
        }
    }
}
