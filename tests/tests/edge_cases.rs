//! Pathological inputs the paper's fast path must survive: non-finite
//! values, denormals, degenerate block shapes, and radii that underflow or
//! overflow the exponent arithmetic behind Formula (4). Every case must
//! either roundtrip within the bound or return a clean `SzxError` — never
//! panic — and the scalar and kernel paths must agree byte-for-byte.

use szx_core::config::KernelSelect;
use szx_core::{SzxConfig, SzxError};

const SELECTS: [KernelSelect; 2] = [KernelSelect::Scalar, KernelSelect::Kernel];

/// Compress under both hot-loop implementations, assert identical streams,
/// and return one of them.
fn compress_both(data: &[f32], cfg: &SzxConfig) -> Vec<u8> {
    let a = szx_core::compress(data, &cfg.with_kernel(KernelSelect::Scalar)).unwrap();
    let b = szx_core::compress(data, &cfg.with_kernel(KernelSelect::Kernel)).unwrap();
    assert_eq!(a, b, "scalar and kernel streams differ");
    b
}

fn assert_bounded(data: &[f32], back: &[f32], eb: f64) {
    assert_eq!(data.len(), back.len());
    for (i, (&x, &y)) in data.iter().zip(back).enumerate() {
        if x.is_nan() {
            assert!(y.is_nan(), "index {i}: NaN lost");
        } else if x.is_infinite() {
            assert_eq!(x, y, "index {i}: infinity lost");
        } else {
            assert!(
                (x as f64 - y as f64).abs() <= eb,
                "index {i}: |{x} - {y}| > {eb}"
            );
        }
    }
}

#[test]
fn nan_inf_and_denormal_blocks() {
    let mut data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.05).sin()).collect();
    // One block of each poison, plus denormals straddling a block seam.
    for v in &mut data[0..128] {
        *v = f32::NAN;
    }
    data[130] = f32::INFINITY;
    data[131] = f32::NEG_INFINITY;
    data[140] = f32::NAN;
    for (k, v) in data[250..270].iter_mut().enumerate() {
        *v = f32::from_bits(1 + k as u32); // smallest subnormals
    }
    for eb in [1e-2, 1e-6, 0.0] {
        let cfg = SzxConfig::absolute(eb).with_block_size(128);
        let bytes = compress_both(&data, &cfg);
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        assert_bounded(&data, &back, eb);
        // Blocks containing non-finite values degrade to bit-exact storage.
        for i in (0..128).chain(128..256) {
            assert_eq!(data[i].to_bits(), back[i].to_bits(), "index {i} (eb={eb})");
        }
    }
}

#[test]
fn all_nan_input() {
    let data = vec![f32::NAN; 300];
    let cfg = SzxConfig::absolute(1e-3);
    let bytes = compress_both(&data, &cfg);
    let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
    assert!(back.iter().all(|v| v.is_nan()));
}

#[test]
fn all_constant_and_single_element() {
    for (data, eb) in [
        (vec![7.25f32; 10_000], 1e-3),
        (vec![7.25f32; 10_000], 0.0),
        (vec![-0.0f32, 0.0, -0.0, 0.0], 0.0),
        (vec![3.5f32], 1e-3),
        (vec![f32::MIN_POSITIVE], 0.0),
    ] {
        let cfg = SzxConfig::absolute(eb);
        let bytes = compress_both(&data, &cfg);
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        assert_bounded(&data, &back, eb);
    }
}

#[test]
fn denormal_only_blocks_with_tiny_bounds() {
    // Radii down in the subnormal range must not corrupt the exponent
    // arithmetic of Formula (4); with a bound even smaller, blocks fall
    // back to (bit-exact) full-length storage.
    let data: Vec<f32> = (0..256).map(|i| f32::from_bits(i as u32 * 3 + 1)).collect();
    for eb in [1e-30, 1e-42, f64::MIN_POSITIVE, 0.0] {
        let cfg = SzxConfig::absolute(eb);
        let bytes = compress_both(&data, &cfg);
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        assert_bounded(&data, &back, eb);
    }
}

#[test]
fn huge_dynamic_range_defeats_normalization_cleanly() {
    // radius = (MAX - MIN)/2 overflows f32 to +inf; the block must degrade
    // to bit-exact storage instead of emitting garbage.
    let mut data = vec![0.0f32; 128];
    data[0] = f32::MAX;
    data[1] = f32::MIN;
    data[2] = 1.0e-20;
    let cfg = SzxConfig::absolute(1e-3);
    let bytes = compress_both(&data, &cfg);
    let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
    for (i, (&x, &y)) in data.iter().zip(&back).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "index {i}");
    }
}

#[test]
fn mixed_sign_zero_blocks() {
    // All-zero blocks with mixed signs: μ selection must stay deterministic
    // (kernel == scalar asserted by compress_both) and the bound holds.
    let data: Vec<f32> = (0..1000)
        .map(|i| if i % 3 == 0 { -0.0 } else { 0.0 })
        .collect();
    for eb in [1e-3, 0.0] {
        let cfg = SzxConfig::absolute(eb);
        let bytes = compress_both(&data, &cfg);
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        assert_bounded(&data, &back, eb);
    }
}

#[test]
fn empty_input_and_invalid_config_are_errors() {
    for sel in SELECTS {
        let cfg = SzxConfig::absolute(1e-3).with_kernel(sel);
        assert!(matches!(
            szx_core::compress::<f32>(&[], &cfg),
            Err(SzxError::EmptyInput)
        ));
        assert!(szx_core::compress(&[1.0f32], &cfg.with_block_size(0)).is_err());
        assert!(szx_core::compress(&[1.0f32], &SzxConfig::absolute(f64::NAN)).is_err());
        assert!(szx_core::compress(&[1.0f32], &SzxConfig::absolute(-1.0)).is_err());
    }
}

#[test]
fn f64_edge_values() {
    let mut data: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
    data[0] = f64::NAN;
    data[1] = f64::INFINITY;
    data[200] = f64::MIN_POSITIVE; // subnormal boundary
    data[201] = 5e-324; // smallest subnormal
    for eb in [1e-6, 0.0] {
        for sel in SELECTS {
            let cfg = SzxConfig::absolute(eb)
                .with_kernel(sel)
                .with_block_size(128);
            let bytes = szx_core::compress(&data, &cfg).unwrap();
            let back: Vec<f64> = szx_core::decompress(&bytes).unwrap();
            for (i, (&x, &y)) in data.iter().zip(&back).enumerate() {
                if x.is_nan() {
                    assert!(y.is_nan(), "index {i}");
                } else if x.is_infinite() {
                    assert_eq!(x, y, "index {i}");
                } else {
                    assert!((x - y).abs() <= eb, "index {i}: |{x} - {y}| > {eb}");
                }
            }
        }
    }
}
