//! Seeded property suite for the compressor's two core contracts:
//!
//! 1. **Error bound**: every finite element of `decompress(compress(d))` is
//!    within the stream's recorded absolute bound of the input.
//! 2. **Path equivalence**: the scalar reference path, the branch-free
//!    kernel path, and the parallel encoder all produce byte-identical
//!    archives for the same input and config — and the scalar, kernel, and
//!    parallel *decoders* reconstruct bit-identical outputs from them.
//!
//! ~200 deterministic cases (no proptest shrinking needed — the case seed
//! is printed on failure) sweep f32/f64, block sizes {1, 17, 128, 4096},
//! ragged lengths, all three commit strategies, and abs/rel bounds from
//! 1e-1 down to 1e-7.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use szx_core::config::KernelSelect;
use szx_core::{CommitStrategy, ErrorBound, SzxConfig, SzxFloat};

// Under Miri the same properties run over a reduced sweep: a handful of
// seeds and small inputs keep the interpreted run tractable while still
// crossing the block-size/strategy/bound space. `cargo miri test` (with
// `MIRIFLAGS=-Zmiri-many-seeds` in CI) picks these up automatically.
const CASES_PER_TYPE: u64 = if cfg!(miri) { 4 } else { 100 };
const MAX_N: usize = if cfg!(miri) { 512 } else { 20_000 };

const BLOCK_SIZES: [usize; 4] = [1, 17, 128, 4096];
const STRATEGIES: [CommitStrategy; 3] = [
    CommitStrategy::ByteAligned,
    CommitStrategy::BitPack,
    CommitStrategy::BytePlusResidual,
];

/// Synthesize a dataset whose character is chosen by `shape`.
fn gen_data<F: SzxFloat>(rng: &mut SmallRng, n: usize, shape: u32) -> Vec<F> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            let v = match shape % 6 {
                // Smooth wave + small noise: mostly non-constant blocks.
                0 => (x * 0.01).sin() * 5.0 + rng.gen::<f64>() * 0.01,
                // Uniform noise over a wide range.
                1 => (rng.gen::<f64>() - 0.5) * 2e3,
                // Mostly constant with occasional jumps.
                2 => {
                    if rng.gen_bool(0.02) {
                        rng.gen::<f64>() * 100.0
                    } else {
                        42.5
                    }
                }
                // Tiny magnitudes near the bound.
                3 => (rng.gen::<f64>() - 0.5) * 1e-5,
                // Mixed scales: exercises exponent-driven required lengths.
                4 => {
                    let e = rng.gen_range(-8i32..8) as f64;
                    (rng.gen::<f64>() - 0.5) * 10f64.powi(e as i32)
                }
                // Smooth low-variation field: mostly constant blocks.
                _ => 1000.0 + (x * 0.001).cos(),
            };
            F::from_f64(v)
        })
        .collect()
}

/// One property case: roundtrip within bound + all paths byte-identical.
fn check_case<F: SzxFloat>(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let bs = BLOCK_SIZES[rng.gen_range(0usize..4)];
    // Ragged length: never a multiple of the block size when bs > 1.
    let blocks = rng.gen_range(1usize..8);
    let tail = if bs > 1 { rng.gen_range(1..bs) } else { 1 };
    let n = (bs * blocks + tail).min(MAX_N);
    let shape = rng.gen::<u32>();
    let data = gen_data::<F>(&mut rng, n, shape);

    let exp = rng.gen_range(1i32..=7);
    let bound = 10f64.powi(-exp);
    let error_bound = if rng.gen_bool(0.5) {
        ErrorBound::Absolute(bound)
    } else {
        ErrorBound::Relative(bound)
    };
    let strategy = STRATEGIES[(seed % 3) as usize];
    let cfg = SzxConfig {
        error_bound,
        block_size: bs,
        strategy,
        kernel: KernelSelect::Scalar,
    };
    let ctx = format!(
        "seed={seed} ty={} n={n} bs={bs} strategy={strategy:?} bound={error_bound:?}",
        std::any::type_name::<F>()
    );

    let scalar = szx_core::compress(&data, &cfg).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let kernel = szx_core::compress(&data, &cfg.with_kernel(KernelSelect::Kernel)).unwrap();
    assert_eq!(scalar, kernel, "{ctx}: scalar vs kernel archives differ");
    let simd = szx_core::compress(&data, &cfg.with_kernel(KernelSelect::Simd)).unwrap();
    assert_eq!(scalar, simd, "{ctx}: scalar vs simd archives differ");
    let par = szx_core::parallel::compress(&data, &cfg.with_kernel(KernelSelect::Kernel)).unwrap();
    assert_eq!(scalar, par, "{ctx}: serial vs parallel archives differ");

    // The bound the decoder must honour is the absolute one recorded in the
    // stream header (relative bounds are resolved against the value range
    // at compress time).
    let eb = szx_core::inspect(&scalar).unwrap().eb;
    let back: Vec<F> = szx_core::decompress_with(&scalar, KernelSelect::Scalar).unwrap();
    assert_eq!(back.len(), data.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in data.iter().zip(&back).enumerate() {
        let (x, y) = (x.to_f64(), y.to_f64());
        assert!(
            (x - y).abs() <= eb,
            "{ctx}: element {i}: |{x} - {y}| > eb={eb}"
        );
    }

    // Decode-path equivalence: the kernel and simd decoders (and both
    // parallel decode paths) must reconstruct *bit-identical* outputs to
    // the scalar oracle — same NaN payloads included.
    let kback: Vec<F> = szx_core::decompress_with(&scalar, KernelSelect::Kernel).unwrap();
    let vback: Vec<F> = szx_core::decompress_with(&scalar, KernelSelect::Simd).unwrap();
    let pback: Vec<F> = szx_core::parallel::decompress_with(&scalar, KernelSelect::Kernel).unwrap();
    let psback: Vec<F> =
        szx_core::parallel::decompress_with(&scalar, KernelSelect::Scalar).unwrap();
    for (i, x) in back.iter().enumerate() {
        let b = x.to_word();
        assert_eq!(b, kback[i].to_word(), "{ctx}: kernel decode differs at {i}");
        assert_eq!(b, vback[i].to_word(), "{ctx}: simd decode differs at {i}");
        assert_eq!(
            b,
            pback[i].to_word(),
            "{ctx}: parallel kernel decode differs at {i}"
        );
        assert_eq!(
            b,
            psback[i].to_word(),
            "{ctx}: parallel scalar decode differs at {i}"
        );
    }
}

#[test]
fn roundtrip_error_bound_and_path_equivalence_f32() {
    for seed in 0..CASES_PER_TYPE {
        check_case::<f32>(seed);
    }
}

#[test]
fn roundtrip_error_bound_and_path_equivalence_f64() {
    for seed in 100..100 + CASES_PER_TYPE {
        check_case::<f64>(seed);
    }
}

/// Corpus-replay arm: the committed fuzz corpus (`tests/corpus/`) replays
/// through the *same* differential oracle the fuzzing engine uses, so this
/// property suite and `szx-fuzz` cannot drift apart on what "correct"
/// means. `round_*.spec` entries re-assert the error-bound property here
/// with this file's own check on top of the shared target; `decode_*.szx`
/// seeds must actually decode through all five paths (the fuzz target only
/// requires agreement, not success — seeds are known-good archives).
#[test]
fn corpus_replays_through_the_shared_oracle() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let entries = szx_fuzz::corpus::load_dir(&dir).expect("tests/corpus readable");

    let mut specs = 0usize;
    let mut archives = 0usize;
    for (name, bytes) in &entries {
        if name.starts_with("round_") {
            szx_fuzz::run_target(szx_fuzz::FuzzTarget::RoundtripConfig, bytes)
                .unwrap_or_else(|f| panic!("{name}: shared roundtrip oracle: {f}"));
            // Independent re-check of the bound property, through this
            // suite's own loop rather than the oracle's.
            let spec = szx_fuzz::Spec::from_bytes(bytes);
            let data: Vec<f64> = spec.generate();
            if let Ok(stream) = szx_core::compress(&data, &spec.config()) {
                let eb = szx_core::inspect(&stream).unwrap().eb;
                let back: Vec<f64> = szx_core::decompress(&stream).unwrap();
                for (i, (x, y)) in data.iter().zip(&back).enumerate() {
                    if x.is_finite() {
                        assert!(
                            (x - y).abs() <= eb,
                            "{name}: element {i}: |{x} - {y}| > eb={eb}"
                        );
                    }
                }
            }
            specs += 1;
        } else if name.starts_with("decode_") && !name.starts_with("decode_zz_") {
            let report = if name.contains("_f64") {
                szx_fuzz::differential_decode_typed::<f64>(bytes)
            } else {
                szx_fuzz::differential_decode_typed::<f32>(bytes)
            }
            .unwrap_or_else(|f| panic!("{name}: shared decode oracle: {f}"));
            assert!(
                report.decoded_ok,
                "{name}: known-good seed failed to decode"
            );
            archives += 1;
        }
    }
    assert!(specs >= 8, "only {specs} round specs replayed");
    assert!(archives >= 8, "only {archives} decode seeds replayed");
}

#[test]
fn lossless_when_bound_is_zero() {
    const N: usize = if cfg!(miri) { 300 } else { 5_000 };
    let mut rng = SmallRng::seed_from_u64(99);
    let data: Vec<f32> = (0..N).map(|_| (rng.gen::<f32>() - 0.5) * 1e6).collect();
    for sel in [
        KernelSelect::Scalar,
        KernelSelect::Kernel,
        KernelSelect::Simd,
    ] {
        let cfg = SzxConfig::absolute(0.0).with_kernel(sel);
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        assert_eq!(data, back, "e=0 must be bit-exact ({sel:?})");
    }
}

#[test]
fn streaming_frames_match_serial_per_frame() {
    // The frame writer routes through the same compress(); KernelSelect
    // must not change frame bytes either.
    const N: usize = if cfg!(miri) { 1_000 } else { 10_000 };
    let mut rng = SmallRng::seed_from_u64(7);
    let data: Vec<f32> = (0..N)
        .map(|i| (i as f32 * 0.01).sin() + rng.gen::<f32>() * 0.01)
        .collect();
    let mut streams = Vec::new();
    for sel in [
        KernelSelect::Scalar,
        KernelSelect::Kernel,
        KernelSelect::Simd,
    ] {
        let cfg = SzxConfig::absolute(1e-4).with_kernel(sel);
        let mut w = szx_core::FrameWriter::new(cfg).unwrap();
        for chunk in data.chunks(if cfg!(miri) { 300 } else { 3_000 }) {
            w.push(chunk).unwrap();
        }
        streams.push(w.into_bytes());
    }
    assert_eq!(streams[0], streams[1], "streaming bytes differ by kernel");
}
