//! Telemetry counters must agree *exactly* with the ground-truth block
//! classification that `szx_core::analysis::classify` computes from the raw
//! data — for the serial encoder and for the parallel one (whose per-worker
//! collectors are merged at the assemble join point).
//!
//! The whole check lives in ONE test function: the telemetry registry is a
//! process-wide singleton, and the libtest harness runs `#[test]` functions
//! on multiple threads, so two tests snapshotting/resetting the registry
//! would race each other.

use szx_core::{analysis, SzxConfig};
use szx_data::{Application, Scale};

fn field() -> Vec<f32> {
    // A mixed field: smooth regions (constant blocks), turbulent regions
    // (a spread of required lengths). Concatenating every tiny Miranda
    // field yields hundreds of blocks, enough to span several parallel
    // chunks.
    let ds = Application::Miranda.generate(Scale::Tiny, 0x7E1E);
    ds.fields
        .iter()
        .flat_map(|f| f.data.iter().copied())
        .collect()
}

/// Compress with `compress_fn` after a registry reset, then assert the
/// published counters/histogram equal `expect` (from `analysis::classify`).
fn check_counters(
    label: &str,
    data: &[f32],
    cfg: &SzxConfig,
    expect: &analysis::BlockReport,
    compress_fn: impl Fn(&[f32], &SzxConfig) -> Vec<u8>,
) {
    let tel = szx_telemetry::global();
    tel.reset();
    let bytes = compress_fn(data, cfg);
    let report = tel.snapshot();

    let constant = report.counter("compress.blocks.constant").unwrap_or(0);
    let nonconstant = report.counter("compress.blocks.nonconstant").unwrap_or(0);
    let fallback = report.counter("compress.blocks.fallback").unwrap_or(0);
    assert_eq!(
        constant as usize, expect.n_constant,
        "{label}: constant blocks"
    );
    assert_eq!(
        (constant + nonconstant) as usize,
        expect.n_blocks,
        "{label}: total blocks"
    );
    // Fallback blocks (req_len == full width) are a subset of non-constant.
    let expect_fallback = *expect.req_len_histogram.last().unwrap();
    assert_eq!(fallback, expect_fallback, "{label}: fallback blocks");

    // The req_len histogram must match classify's bucket-for-bucket.
    let hist = report
        .hist("compress.req_len")
        .expect("req_len histogram published");
    assert_eq!(
        hist.count,
        expect.req_len_histogram.iter().sum::<u64>(),
        "{label}: histogram total"
    );
    let mut expect_buckets: Vec<(u64, u64)> = expect
        .req_len_histogram
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(r, &n)| (r as u64, n))
        .collect();
    expect_buckets.sort_unstable();
    assert_eq!(hist.buckets, expect_buckets, "{label}: histogram buckets");

    // Stream-size bookkeeping is consistent with what was actually written.
    assert_eq!(
        report.counter("compress.bytes.raw"),
        Some((data.len() * 4) as u64),
        "{label}: raw bytes"
    );
    assert_eq!(
        report.counter("compress.bytes.stream"),
        Some(bytes.len() as u64),
        "{label}: stream bytes"
    );
    // Per-stage spans fired around the pass.
    for span in [
        "compress.total",
        "compress.range_scan",
        "compress.encode_blocks",
    ] {
        let s = report
            .span(span)
            .unwrap_or_else(|| panic!("{label}: span {span} missing"));
        assert_eq!(s.count, 1, "{label}: span {span} count");
    }
}

#[test]
fn telemetry_counters_match_classify_serial_and_parallel() {
    szx_telemetry::set_enabled(true);
    let data = field();
    assert!(data.len() > 128 * 64, "need a multi-chunk field");

    for rel in [1e-2, 1e-3, 1e-4] {
        let cfg = SzxConfig::relative(rel);
        let expect = analysis::classify(&data, &cfg).unwrap();
        assert!(
            expect.n_constant > 0,
            "field should have constant blocks at rel={rel}"
        );
        assert!(
            expect.n_constant < expect.n_blocks,
            "field should have non-constant blocks at rel={rel}"
        );

        check_counters("serial", &data, &cfg, &expect, |d, c| {
            szx_core::compress(d, c).unwrap()
        });
        check_counters("parallel", &data, &cfg, &expect, |d, c| {
            szx_core::parallel::compress(d, c).unwrap()
        });
    }

    // Decode counters mirror the stream's own header/state array.
    let cfg = SzxConfig::relative(1e-3);
    let bytes = szx_core::compress(&data, &cfg).unwrap();
    let expect = analysis::classify(&data, &cfg).unwrap();
    let tel = szx_telemetry::global();
    tel.reset();
    let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
    assert_eq!(back.len(), data.len());
    let report = tel.snapshot();
    assert_eq!(
        report.counter("decompress.blocks.constant"),
        Some(expect.n_constant as u64),
        "decode constant blocks"
    );
    assert_eq!(
        report.counter("decompress.blocks.nonconstant"),
        Some((expect.n_blocks - expect.n_constant) as u64),
        "decode non-constant blocks"
    );
    assert_eq!(
        report.counter("decompress.bytes.out"),
        Some((data.len() * 4) as u64)
    );

    // And the parallel decoder publishes the same totals.
    tel.reset();
    let back2: Vec<f32> = szx_core::parallel::decompress(&bytes).unwrap();
    assert_eq!(back2, back);
    let report = tel.snapshot();
    assert_eq!(
        report.counter("decompress.blocks.constant"),
        Some(expect.n_constant as u64),
        "parallel decode constant blocks"
    );
    assert_eq!(
        report.counter("decompress.blocks.nonconstant"),
        Some((expect.n_blocks - expect.n_constant) as u64),
        "parallel decode non-constant blocks"
    );
}
