//! Metrics-level integration: reconstruction quality statistics on real
//! generator output behave the way the paper's evaluation relies on.

use szx_core::SzxConfig;
use szx_data::Application;
use szx_integration_tests::tiny;
use szx_metrics::{block_range_cdf, distortion, error_pdf, ssim_2d};

#[test]
fn psnr_improves_with_tighter_bounds() {
    let ds = tiny(Application::Miranda);
    let f = ds.field("pressure").unwrap();
    let mut last_psnr = 0.0;
    for rel in [1e-2, 1e-3, 1e-4] {
        let bytes = szx_core::compress(&f.data, &SzxConfig::relative(rel)).unwrap();
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        let stats = distortion(&f.data, &back);
        assert!(
            stats.psnr > last_psnr + 10.0,
            "PSNR must improve ~20dB per decade: {last_psnr} -> {}",
            stats.psnr
        );
        last_psnr = stats.psnr;
    }
}

#[test]
fn error_pdf_is_fully_inside_the_bound() {
    for app in Application::ALL {
        let ds = tiny(app);
        let f = &ds.fields[0];
        let eb = (1e-3 * f.value_range()).max(1e-12);
        let bytes = szx_core::compress(&f.data, &SzxConfig::absolute(eb)).unwrap();
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        let pdf = error_pdf(&f.data, &back, eb, 21);
        assert_eq!(pdf.out_of_span, 0.0, "{}/{}", ds.name, f.name);
    }
}

#[test]
fn figure2_smoothness_ordering() {
    // Miranda must be smoother than Nyx at the same threshold — the
    // qualitative contrast between Figures 2(a) and 2(b).
    let miranda = tiny(Application::Miranda);
    let nyx = tiny(Application::Nyx);
    let m = block_range_cdf(&miranda.field("pressure").unwrap().data, 8, &[0.02])[0];
    let n = block_range_cdf(&nyx.field("velocity-x").unwrap().data, 8, &[0.02])[0];
    assert!(m > n, "Miranda CDF {m} must dominate Nyx {n}");
    assert!(m > 0.6, "Miranda is very smooth: {m}");
}

#[test]
fn ssim_degrades_monotonically_with_bound() {
    let ds = tiny(Application::Hurricane);
    let f = ds.field("CLOUD").unwrap();
    let (w, h, orig) = f.slice_z(f.dims[2] / 2);
    let mut last = f64::NEG_INFINITY;
    let plane = w * h;
    let z = f.dims[2] / 2;
    // Loosest bound first: SSIM must improve (or hold) as the bound tightens.
    for rel in [1e-1, 1e-2, 1e-3] {
        let bytes = szx_core::compress(&f.data, &SzxConfig::relative(rel)).unwrap();
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        let s = ssim_2d(&orig, &back[z * plane..(z + 1) * plane], w, h, 0);
        assert!(
            s >= last - 1e-9,
            "SSIM must not degrade with tighter bound: {last} -> {s}"
        );
        last = s;
    }
}

#[test]
fn compression_ratio_decreases_with_tighter_bounds_everywhere() {
    for app in Application::ALL {
        let ds = tiny(app);
        for f in ds.fields.iter().take(3) {
            let mut last = f64::INFINITY;
            for rel in [1e-2, 1e-3, 1e-4] {
                let bytes = szx_core::compress(&f.data, &SzxConfig::relative(rel)).unwrap();
                let cr = f.raw_bytes() as f64 / bytes.len() as f64;
                assert!(
                    cr <= last * 1.001,
                    "{}/{}: CR should not grow with tighter bound ({last} -> {cr})",
                    ds.name,
                    f.name
                );
                last = cr;
            }
        }
    }
}
