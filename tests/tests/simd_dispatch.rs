//! Runtime dispatch behavior of the explicit SIMD path.
//!
//! The `SZX_DISABLE_SIMD` environment override must force
//! `szx_core::simd::available()` to report "unsupported", making `Auto`
//! and explicit `Simd` requests silently resolve to the portable kernel —
//! with byte-identical streams and bit-identical decodes, so flipping the
//! override can never change results, only instruction selection.
//!
//! Environment variables are process-global, so every env-touching
//! assertion lives in ONE test function (this file is its own test binary;
//! other binaries never see the variable).

use szx_core::{KernelPath, KernelSelect, SzxConfig};

fn field() -> Vec<f32> {
    (0..20_000)
        .map(|i| {
            let x = i as f32 * 0.004;
            x.sin() * 8.0 + (x * 41.7).cos() * 0.05
        })
        .collect()
}

#[test]
fn szx_disable_simd_forces_portable_fallback_with_identical_output() {
    let data = field();
    let cfg = SzxConfig::absolute(1e-4).with_kernel(KernelSelect::Simd);
    let baseline = szx_core::compress(&data, &cfg).unwrap();
    let baseline_back: Vec<f32> = szx_core::decompress_with(&baseline, KernelSelect::Simd).unwrap();

    std::env::set_var("SZX_DISABLE_SIMD", "1");
    assert!(
        !szx_core::simd::available(),
        "override must report the SIMD path unavailable"
    );
    assert_eq!(KernelSelect::Auto.resolve(), KernelPath::Kernel);
    assert_eq!(
        KernelSelect::Simd.resolve(),
        KernelPath::Kernel,
        "an explicit Simd request degrades silently, it does not error"
    );
    // Scalar/Kernel requests are untouched by the override.
    assert_eq!(KernelSelect::Scalar.resolve(), KernelPath::Scalar);
    assert_eq!(KernelSelect::Kernel.resolve(), KernelPath::Kernel);

    let disabled = szx_core::compress(&data, &cfg).unwrap();
    let disabled_back: Vec<f32> = szx_core::decompress_with(&disabled, KernelSelect::Simd).unwrap();
    let disabled_par = szx_core::parallel::compress(&data, &cfg).unwrap();

    // The empty string means "unset": resolution returns to hardware
    // detection.
    std::env::set_var("SZX_DISABLE_SIMD", "");
    let empty_available = szx_core::simd::available();
    std::env::remove_var("SZX_DISABLE_SIMD");
    assert_eq!(
        empty_available,
        szx_core::simd::available(),
        "SZX_DISABLE_SIMD=\"\" must behave exactly like unset"
    );

    assert_eq!(
        baseline, disabled,
        "disabling SIMD must not change the compressed stream"
    );
    assert_eq!(baseline, disabled_par);
    assert_eq!(baseline_back.len(), disabled_back.len());
    for (a, b) in baseline_back.iter().zip(&disabled_back) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn auto_prefers_simd_when_the_cpu_supports_it() {
    // On hosts with the ISA extension, Auto resolution order is
    // simd → kernel; elsewhere it lands on the portable kernel. Either
    // way it must agree with available().
    let resolved = KernelSelect::Auto.resolve();
    if szx_core::simd::available() {
        assert_eq!(resolved, KernelPath::Simd);
    } else {
        assert_eq!(resolved, KernelPath::Kernel);
    }
}

#[test]
fn all_selections_roundtrip_within_bound() {
    let data = field();
    for sel in [
        KernelSelect::Auto,
        KernelSelect::Scalar,
        KernelSelect::Kernel,
        KernelSelect::Simd,
    ] {
        let cfg = SzxConfig::absolute(1e-3).with_kernel(sel);
        let bytes = szx_core::compress(&data, &cfg).unwrap();
        let back: Vec<f32> = szx_core::decompress_with(&bytes, sel).unwrap();
        for (x, y) in data.iter().zip(&back) {
            assert!((x - y).abs() <= 1e-3, "{sel:?}");
        }
    }
}
