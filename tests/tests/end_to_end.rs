//! End-to-end integration: every codec on every synthetic application,
//! verifying error bounds, compression-ratio ordering, and cross-path
//! (serial/parallel/GPU-model) agreement on realistic data.

use szx_baselines::{lzlike, szlike, zfplike};
use szx_core::{CommitStrategy, SzxConfig};
use szx_data::Application;
use szx_integration_tests::{max_err, tiny};

#[test]
fn szx_respects_bounds_on_every_app_and_field() {
    for app in Application::ALL {
        let ds = tiny(app);
        for f in &ds.fields {
            let eb = 1e-3 * f.value_range();
            let cfg = SzxConfig::absolute(eb);
            let bytes = szx_core::compress(&f.data, &cfg).unwrap();
            let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
            let err = max_err(&f.data, &back);
            assert!(err <= eb, "{}/{}: {err} > {eb}", ds.name, f.name);
        }
    }
}

#[test]
fn all_codecs_respect_bounds_on_miranda() {
    let ds = tiny(Application::Miranda);
    for f in &ds.fields {
        let eb = (1e-4 * f.value_range()).max(1e-30);
        let sz = szlike::compress(&f.data, f.dims, eb).unwrap();
        let (back, _) = szlike::decompress(&sz).unwrap();
        assert!(max_err(&f.data, &back) <= eb, "szlike {}", f.name);

        let zf = zfplike::compress(&f.data, f.dims, eb).unwrap();
        let (back, _) = zfplike::decompress(&zf).unwrap();
        assert!(max_err(&f.data, &back) <= eb, "zfplike {}", f.name);

        let lz = lzlike::compress_f32(&f.data).unwrap();
        let raw = lzlike::decompress(&lz).unwrap();
        let back: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(back, f.data, "lzlike must be lossless on {}", f.name);
    }
}

#[test]
fn table3_ordering_holds_overall() {
    // Aggregated over all Miranda fields: CR(SZ) > CR(ZFP) > CR(SZx) > CR(LZ).
    let ds = tiny(Application::Miranda);
    let (mut raw, mut szx_c, mut sz_c, mut zfp_c, mut lz_c) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    for f in &ds.fields {
        let eb = 1e-3 * f.value_range();
        raw += f.raw_bytes();
        szx_c += szx_core::compress(&f.data, &SzxConfig::absolute(eb))
            .unwrap()
            .len();
        sz_c += szlike::compress(&f.data, f.dims, eb).unwrap().len();
        zfp_c += zfplike::compress(&f.data, f.dims, eb).unwrap().len();
        lz_c += lzlike::compress_f32(&f.data).unwrap().len();
    }
    let cr = |c: usize| raw as f64 / c as f64;
    assert!(cr(sz_c) > cr(zfp_c), "SZ {} vs ZFP {}", cr(sz_c), cr(zfp_c));
    assert!(
        cr(zfp_c) > cr(szx_c),
        "ZFP {} vs SZx {}",
        cr(zfp_c),
        cr(szx_c)
    );
    assert!(cr(szx_c) > cr(lz_c), "SZx {} vs LZ {}", cr(szx_c), cr(lz_c));
    assert!(
        cr(lz_c) > 1.0 && cr(lz_c) < 2.5,
        "lossless CR in the paper band: {}",
        cr(lz_c)
    );
}

#[test]
fn parallel_paths_agree_with_serial_on_real_data() {
    let ds = tiny(Application::ScaleLetkf);
    for f in ds.fields.iter().take(4) {
        let cfg = SzxConfig::relative(1e-3);
        let serial = szx_core::compress(&f.data, &cfg).unwrap();
        let par = szx_core::parallel::compress(&f.data, &cfg).unwrap();
        assert_eq!(serial, par, "{}", f.name);
        let a: Vec<f32> = szx_core::decompress(&serial).unwrap();
        let b: Vec<f32> = szx_core::parallel::decompress(&serial).unwrap();
        assert_eq!(a, b, "{}", f.name);
    }
}

#[test]
fn all_commit_strategies_agree_on_reconstruction_error_bound() {
    let ds = tiny(Application::Nyx);
    let f = ds.field("temperature").unwrap();
    let eb = 1e-3 * f.value_range();
    for strategy in [
        CommitStrategy::ByteAligned,
        CommitStrategy::BitPack,
        CommitStrategy::BytePlusResidual,
    ] {
        let cfg = SzxConfig::absolute(eb).with_strategy(strategy);
        let bytes = szx_core::compress(&f.data, &cfg).unwrap();
        let back: Vec<f32> = szx_core::decompress(&bytes).unwrap();
        assert!(max_err(&f.data, &back) <= eb, "{strategy:?}");
    }
}

#[test]
fn solution_b_stream_is_never_larger_than_solution_c() {
    // Solutions A/B store the exact necessary bits; C trades a few percent
    // of space for speed (§5.2). Verify the direction of the trade.
    let ds = tiny(Application::Hurricane);
    let f = ds.field("TC").unwrap();
    let eb = 1e-4 * f.value_range();
    let c = szx_core::compress(&f.data, &SzxConfig::absolute(eb))
        .unwrap()
        .len();
    let b = szx_core::compress(
        &f.data,
        &SzxConfig::absolute(eb).with_strategy(CommitStrategy::BytePlusResidual),
    )
    .unwrap()
    .len();
    let a = szx_core::compress(
        &f.data,
        &SzxConfig::absolute(eb).with_strategy(CommitStrategy::BitPack),
    )
    .unwrap()
    .len();
    // Allow per-block byte padding slack for B.
    let slack = f.data.len() / 128 + 64;
    assert!(b <= c + slack, "B {b} should be <= C {c} (+slack)");
    assert!(a <= b + slack, "A {a} should be <= B {b} (+slack)");
}
