//! Committed-corpus regression replay: every file under `tests/corpus/` —
//! the seed corpus plus every minimized fuzz finding committed since — runs
//! through the same target functions the fuzzing engine mutates against
//! (`szx_fuzz::run_target_guarded`). A finding that was fixed stays fixed;
//! a corpus entry that once tripped a panic or a differential divergence
//! re-tripping it fails this suite, not a nightly fuzz run.
//!
//! The corpus directory is routed by file-name prefix (`decode_*` /
//! `round_*` / `stream_*`, see [`szx_fuzz::FuzzTarget::for_corpus_file`])
//! and pinned by `MANIFEST.txt`; the manifest-freshness test fails when an
//! entry is added, removed, or edited without regenerating the manifest
//! (`cargo run -p szx-fuzz -- manifest tests/corpus`).

use std::path::PathBuf;

use szx_fuzz::corpus;
use szx_fuzz::FuzzTarget;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn load_corpus() -> Vec<(String, Vec<u8>)> {
    corpus::load_dir(&corpus_dir()).expect("tests/corpus must exist and be readable")
}

#[test]
fn every_corpus_entry_routes_to_a_target() {
    let entries = load_corpus();
    assert!(
        entries.len() >= 20,
        "corpus unexpectedly small ({} entries) — seed it with \
         `cargo run -p szx-fuzz -- seed tests/corpus`",
        entries.len()
    );
    for (name, _) in &entries {
        assert!(
            FuzzTarget::for_corpus_file(name).is_some(),
            "{name}: unknown corpus prefix (want decode_*/round_*/stream_*)"
        );
    }
}

#[test]
fn corpus_replays_clean_through_every_target() {
    let entries = load_corpus();
    let mut replayed = 0usize;
    for (name, bytes) in &entries {
        let target = FuzzTarget::for_corpus_file(name)
            .unwrap_or_else(|| panic!("{name}: unroutable corpus entry"));
        if let Err(failure) = szx_fuzz::run_target_guarded(target, bytes) {
            panic!(
                "{name} ({} bytes): regression resurfaced: {failure}",
                bytes.len()
            );
        }
        replayed += 1;
    }
    assert!(replayed >= 20, "only {replayed} entries replayed");
}

#[test]
fn manifest_is_fresh() {
    let dir = corpus_dir();
    let entries = load_corpus();
    let expected = corpus::manifest_string(&entries);
    let committed = std::fs::read_to_string(dir.join(corpus::MANIFEST_NAME))
        .expect("tests/corpus/MANIFEST.txt must be committed");
    assert_eq!(
        committed, expected,
        "tests/corpus/MANIFEST.txt is stale — regenerate with \
         `cargo run -p szx-fuzz -- manifest tests/corpus`"
    );
}

#[test]
fn hostile_seeds_error_without_finding() {
    // The hand-written hostile entries (zz-prefixed) must keep exercising
    // the error paths: they may not decode, but they must never become
    // findings — and the truncated archive must specifically stay an error,
    // not silently start decoding after a format change.
    let entries = load_corpus();
    let trunc = entries
        .iter()
        .find(|(name, _)| name == "decode_zz_trunc.bin")
        .expect("truncated hostile seed present");
    assert!(szx_core::decompress::<f32>(&trunc.1).is_err());
    assert!(szx_core::decompress::<f64>(&trunc.1).is_err());
}
